"""A tour of the storage backends, update strategies and SQL connectors.

Part 1 re-runs a miniature of the paper's Section 5.3.2 pilot study: the
same 8-leaf residual update executed as naive U-join, UPDATE-in-place,
CREATE-new-table, and pointer swap across the backend presets, showing
where WAL, MVCC, compression and row-major layout each bite.

Part 2 demonstrates the connector layer: the identical Figure-4 training
flow executed on the embedded engine and on stdlib sqlite3 — a real
second DBMS — producing the same model (the paper's portability claim).

Part 3 shows the batched frontier evaluator's query census: the same
boosting iteration with ``split_batching`` off (one best-split query per
leaf x feature, the paper's Figure 9 blow-up) and on (one fused query per
relation per frontier round) — identical model, a fraction of the queries.

Run:  python examples/backend_tour.py
"""

import numpy as np

import repro as joinboost
from repro.bench.harness import (
    FIG5_BACKENDS,
    FIG5_METHODS,
    fig05_residual_updates,
    query_census,
)
from repro.datasets import favorita


def storage_preset_tour() -> None:
    results = fig05_residual_updates(num_rows=200_000)
    header = f"{'backend':12s}" + "".join(f"{m:>11s}" for m in FIG5_METHODS)
    print(header)
    print("-" * len(header))
    for backend in FIG5_BACKENDS:
        cells = []
        for method in FIG5_METHODS:
            value = results[backend][method]
            cells.append(f"{'n/a':>11s}" if value is None else f"{value:11.4f}")
        print(f"{backend:12s}" + "".join(cells))
    ref = results["lightgbm-ref"]["array-write"]
    print(f"\nLightGBM reference (raw array write): {ref:.4f}s")
    print("\nReading the table like the paper's Figure 5:")
    print(" * naive (materialize U, re-join) is slowest everywhere")
    print(" * CREATE-k grows with the number of copied columns k")
    print(" * UPDATE pays synced WAL on disk backends and MVCC in memory")
    print(" * column swap is only available on patched/external backends,")
    print("   and lands near the raw-array reference line")


def connector_tour() -> None:
    print("\nSame training flow, two DBMSes (the connector layer):")
    for backend in ("embedded", "sqlite"):
        rng = np.random.default_rng(7)
        n = 5_000
        conn = joinboost.connect(
            backend=backend,
            sales={
                "date_id": rng.integers(0, 120, n),
                "net_profit": rng.normal(size=n),
            },
            date={
                "date_id": np.arange(120),
                "holiday": rng.integers(0, 2, 120).astype(np.float64),
                "weekend": rng.normal(size=120),
            },
        )
        train_set = joinboost.join_graph(conn)
        train_set.add_node("sales", y="net_profit")
        train_set.add_node("date", X=["holiday", "weekend"])
        train_set.add_edge("sales", "date", ["date_id"])
        model = joinboost.train(
            {"objective": "regression", "num_iterations": 5, "num_leaves": 6},
            train_set,
        )
        rmse = joinboost.evaluate_rmse(model, train_set)
        print(f" * {backend:9s} ({conn.dialect:8s}) rmse = {rmse:.12f}")
    print("   (identical rmse: the Factorizer's SQL is the model)")


def census_tour() -> None:
    print("\nPer-iteration query census, batching off vs on (Figure 9):")
    print(f" {'mode':8s} {'split':>6s} {'message':>8s} {'rounds':>7s} "
          f"{'rmse':>14s}")
    for mode in ("off", "on"):
        db, graph = favorita(num_fact_rows=8_000, num_extra_features=5, seed=7)
        db.reset_profiles()
        model = joinboost.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 8, "min_data_in_leaf": 3,
             "split_batching": mode},
        )
        counts = query_census(db)["counts"]
        rmse = joinboost.rmse_on_join(db, graph, model)
        rounds = model.frontier_census.get("batched_rounds", 0)
        print(f" {mode:8s} {counts.get('feature', 0):6d} "
              f"{counts.get('message', 0):8d} {rounds:7d} "
              f"{rmse:14.9f}")
    print("   (same rmse, O(leaves x features) -> O(relations) split queries:")
    print("    leaf membership lives in a persistent jb_leaf column —")
    print("    maintained by narrow delta UPDATEs — and each round issues")
    print("    one fused UNION ALL query per feature-bearing relation)")


def main() -> None:
    storage_preset_tour()
    connector_tour()
    census_tour()


if __name__ == "__main__":
    main()
