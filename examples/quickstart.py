"""Quickstart: the paper's Example 6, end to end.

Defines a two-table schema (sales fact + date dimension), trains gradient
boosting over the *normalized* tables — no join is ever materialized —
and scores the fact rows.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as joinboost


def main() -> None:
    rng = np.random.default_rng(42)
    num_sales, num_dates = 20_000, 365

    holiday = rng.integers(0, 2, num_dates)
    weekend = rng.integers(0, 2, num_dates)
    date_id = rng.integers(0, num_dates, num_sales)
    net_profit = (
        50.0 * holiday[date_id]
        - 20.0 * weekend[date_id]
        + rng.normal(0.0, 5.0, num_sales)
    )

    # 1. Connect and load the normalized tables.
    conn = joinboost.connect(
        sales={"date_id": date_id, "net_profit": net_profit},
        date={
            "date_id": np.arange(num_dates),
            "holiday": holiday,
            "weekend": weekend,
        },
    )

    # 2. Define the training dataset as a join graph (Figure 4 API).
    train_set = joinboost.join_graph(conn)
    train_set.add_node("sales", Y=["net_profit"])
    train_set.add_node("date", X=["holiday", "weekend"])
    train_set.add_edge("sales", "date", ["date_id"])

    # 3. Train with LightGBM-style parameters.
    model = joinboost.train(
        {"objective": "regression", "num_iterations": 20,
         "num_leaves": 4, "learning_rate": 0.3},
        train_set,
    )

    # 4. Score and evaluate.
    scores = joinboost.predict(model, train_set)
    rmse = joinboost.evaluate_rmse(model, train_set)
    print(f"trained {len(model.trees)} trees")
    print(f"first tree:\n{model.trees[0].dump()}")
    print(f"predictions: {scores[:5].round(2)}")
    print(f"training rmse: {rmse:.3f} (noise floor ~5.0)")
    assert rmse < 7.0


if __name__ == "__main__":
    main()
