"""Classification over joins: softmax boosting and a gini random forest.

Builds a star schema whose target is a 3-way class label derived from the
dimension features, then trains (a) multiclass gradient boosting via the
per-class gradient semi-rings of Table 2 and (b) a random forest with the
class-count semi-ring of Table 1 (gini criterion).

Run:  python examples/classification_multiclass.py
"""

import numpy as np

import repro as joinboost
from repro.core.predict import feature_frame
from repro.datasets import star_schema
from repro.storage.column import Column


def main() -> None:
    db, graph = star_schema(num_fact_rows=6_000, num_dims=3, seed=11)
    fact = db.table("fact")
    y = fact.column("target").values
    labels = np.digitize(y, np.quantile(y, [0.33, 0.66])).astype(np.int64)
    fact.set_column(Column("target", labels))
    majority = max(np.bincount(labels)) / len(labels)
    print(f"{len(labels)} rows, 3 classes, majority baseline {majority:.3f}")

    frame = feature_frame(db, graph)

    gbm = joinboost.train_gradient_boosting(
        db, graph,
        {"objective": "multiclass", "num_class": 3, "num_iterations": 5,
         "num_leaves": 6, "learning_rate": 0.3},
    )
    gbm_accuracy = float((gbm.predict_arrays(frame) == labels).mean())
    probs = gbm.predict_proba(frame)
    print(f"softmax boosting : accuracy {gbm_accuracy:.3f}; "
          f"probability rows sum to {probs.sum(axis=1)[:3].round(6)}")

    forest = joinboost.train_random_forest(
        db, graph,
        {"objective": "multiclass", "num_class": 3, "num_iterations": 9,
         "num_leaves": 8, "subsample": 0.6, "feature_fraction": 0.8,
         "seed": 3},
    )
    rf_accuracy = float((forest.predict_arrays(frame) == labels).mean())
    print(f"gini random forest: accuracy {rf_accuracy:.3f}")

    assert gbm_accuracy > majority and rf_accuracy > majority


if __name__ == "__main__":
    main()
