"""Figure 20: histogram bins and the data-cube (cuboid) optimization.

Paper shape: with few bins the cuboid is tiny and training speeds up
dramatically (>100x at 5 bins in the paper); more bins trade speed for
accuracy, tracing a Pareto frontier where coarse cuboids converge fastest
to a slightly worse rmse.
"""

from repro.bench.harness import fig20_cuboid
from repro.bench.report import format_table


def test_fig20_cuboid(benchmark, figure_report):
    results = benchmark.pedantic(
        fig20_cuboid,
        kwargs={"num_fact_rows": 120_000, "iterations": 10},
        rounds=1, iterations=1,
    )
    figure_report(
        "fig20",
        format_table(
            "Figure 20 — cuboid training: seconds and rmse vs #bins",
            ["bins", "seconds", "rmse"],
            [list(r) for r in results["rows"]],
        ),
    )

    by_bins = {r[0]: (r[1], r[2]) for r in results["rows"]}
    # bins=1000 exceeds the cuboid threshold and runs the exact path.
    exact = by_bins[1000]
    # Fewer bins -> faster training (the cuboid shrinks).
    assert by_bins[5][0] < exact[0]
    assert by_bins[5][0] <= by_bins[10][0] * 1.25
    # Accuracy cost is bounded: coarse bins lose some rmse but stay sane.
    assert by_bins[10][1] <= by_bins[5][1] * 1.05
    assert exact[1] <= by_bins[5][1]
