"""Figure 17 (Appendix C): TPC-DS and TPC-H gradient boosting / forests.

Paper shape: on TPC-DS JoinBoost behaves like Favorita (RF well ahead,
GBM competitive).  On TPC-H the large Orders dimension makes fact-to-
dimension messages expensive, narrowing JoinBoost's edge — the appendix
calls this out explicitly.
"""

from repro.bench.harness import fig17_tpc
from repro.bench.report import format_table


def test_fig17_tpc(benchmark, figure_report):
    results = benchmark.pedantic(
        fig17_tpc, kwargs={"iterations": 8, "rows": 25_000},
        rounds=1, iterations=1,
    )
    rows = []
    for schema in ("tpcds", "tpch"):
        data = results[schema]
        rows.append([
            schema, data["joinboost_gbm"], data["joinboost_rf"],
            data["lightgbm_gbm"], data["join_export"],
        ])
    figure_report(
        "fig17",
        format_table(
            "Figure 17 — training seconds (8 iterations)",
            ["schema", "jb-gbm", "jb-rf", "lgbm-gbm", "join+export"],
            rows,
        ),
    )

    # Both schemas train end to end; RF (sampled trees) beats GBM per the
    # paper's Figure 17 ordering.
    for schema in ("tpcds", "tpch"):
        assert results[schema]["joinboost_rf"] < results[schema]["joinboost_gbm"]
        assert results[schema]["join_export"] > 0
    # TPC-H's big Orders dimension keeps JoinBoost's GBM from improving on
    # its TPC-DS ratio (the appendix's observation, loosely normalized —
    # at laptop scale the effect is small, see EXPERIMENTS.md).
    tpcds_ratio = results["tpcds"]["joinboost_gbm"] / results["tpcds"]["lightgbm_gbm"]
    tpch_ratio = results["tpch"]["joinboost_gbm"] / results["tpch"]["lightgbm_gbm"]
    assert tpch_ratio > tpcds_ratio * 0.5
