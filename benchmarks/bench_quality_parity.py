"""Section 6.1 quality claim: JoinBoost returns models with rmse nearly
identical to the LightGBM stand-in (and the exact reference is matched
tree-for-tree by construction — tested in the unit suite)."""

import numpy as np

from repro.bench.report import format_table
from repro.baselines.export import load_feature_matrix
from repro.baselines.histgbm import HistGradientBoosting
from repro.core.predict import rmse_on_join
from repro.datasets import favorita
import repro


def _run():
    db, graph = favorita(num_fact_rows=60_000, num_extra_features=8)
    iterations, leaves, lr = 20, 8, 0.1
    ours = repro.train_gradient_boosting(
        db, graph,
        {"num_iterations": iterations, "num_leaves": leaves,
         "learning_rate": lr, "min_data_in_leaf": 3},
    )
    X, y, _ = load_feature_matrix(db, graph)
    theirs = HistGradientBoosting(
        num_iterations=iterations, num_leaves=leaves, learning_rate=lr,
        max_bin=1000, min_child_samples=3,
    ).fit(X, y)
    return {
        "joinboost": rmse_on_join(db, graph, ours),
        "lightgbm": float(np.sqrt(np.mean((theirs.predict(X) - y) ** 2))),
        "target std": float(y.std()),
    }


def test_quality_parity(benchmark, figure_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    figure_report(
        "quality_parity",
        format_table(
            "Section 6.1 — final rmse parity (20 iterations, Favorita)",
            ["system", "rmse"],
            [[k, v] for k, v in results.items()],
        ),
    )
    assert abs(results["joinboost"] - results["lightgbm"]) < 0.1 * results["lightgbm"]
    assert results["joinboost"] < 0.6 * results["target std"]
