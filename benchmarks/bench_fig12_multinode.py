"""Figure 12: multi-node gradient boosting (simulated network).

Paper shape: on 4 machines JoinBoost outruns Dask-LightGBM by a large
factor at every scale factor; at the largest SF the baseline cannot run
even on 4 machines (its data is replicated, so more machines do not
relieve memory), while JoinBoost trains on a single machine and speeds up
with more.
"""

from repro.bench.harness import fig12_multinode
from repro.bench.report import format_table


def test_fig12_multinode(benchmark, figure_report):
    results = benchmark.pedantic(
        fig12_multinode,
        kwargs={"iterations": 5},
        rounds=1, iterations=1,
    )
    text = format_table(
        "Figure 12a — seconds on 4 machines vs SF "
        "(simulated network, measured shard execution)",
        ["SF", "joinboost", "dask-lightgbm", "measured wall"],
        [
            [sf, jb, "OOM" if baseline is None else baseline,
             results["measured_by_sf"][sf]]
            for sf, jb, baseline in results["by_sf"]
        ],
    )
    text += "\n" + format_table(
        f"Figure 12b — seconds vs #machines (SF={results['sf_fixed']})",
        ["machines", "joinboost", "dask-lightgbm", "measured wall"],
        [
            [m, jb, "OOM" if baseline is None else baseline,
             results["measured_by_machines"][m]]
            for m, jb, baseline in results["by_machines"]
        ],
    )
    figure_report("fig12", text)

    # The baseline is OOM at the largest SF (replication, paper §6.2).
    largest_sf = results["by_sf"][-1]
    assert largest_sf[2] is None
    # JoinBoost runs at that SF even on one machine.
    one_machine = results["by_machines"][0]
    assert one_machine[1] is not None
    # More machines help JoinBoost (4 faster than 1) on the simulated
    # clock; the measured walls prove every shard step actually ran.
    by_machines = {m: jb for m, jb, _ in results["by_machines"]}
    assert by_machines[4] < by_machines[1]
    assert all(w > 0 for w in results["measured_by_machines"].values())
    assert all(w > 0 for w in results["measured_by_sf"].values())
