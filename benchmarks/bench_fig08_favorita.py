"""Figure 8: Favorita training time and rmse vs iterations.

Paper shape: JoinBoost random forests finish before the single-table
libraries complete their join-materialize/export/load step (~3× overall);
JoinBoost gradient boosting edges out LightGBM (~1.1×) thanks to the
avoided export; final rmse is nearly identical across systems; the exact
(Sklearn-like) learner is far slower than everything else.
"""

from repro.bench.harness import fig08_favorita
from repro.bench.report import format_series, format_table

_ROWS = 400_000
_ITER = 12


def test_fig08_favorita(benchmark, figure_report):
    results = benchmark.pedantic(
        fig08_favorita,
        kwargs={"num_fact_rows": _ROWS, "iterations": _ITER},
        rounds=1, iterations=1,
    )

    text = format_series(
        f"Figure 8a/8b — cumulative training seconds ({_ROWS:,} fact rows)",
        "iteration",
        results["iterations"],
        {
            "jb-gbm": results["gbm"]["joinboost"],
            "lgbm-gbm": results["gbm"]["lightgbm"],
            "xgb-gbm": results["gbm"]["xgboost"],
            "jb-rf": results["rf"]["joinboost"],
            "lgbm-rf": results["rf"]["lightgbm"],
        },
    )
    text += "\n" + format_table(
        "Figure 8c — final rmse parity",
        ["system", "rmse"],
        [[k, v] for k, v in results["final_rmse"].items()]
        + [["join+export seconds", results["join_export_seconds"]]],
    )
    figure_report("fig08", text)

    jb_gbm = results["gbm"]["joinboost"][-1]
    lgbm_gbm = results["gbm"]["lightgbm"][-1]
    jb_rf = results["rf"]["joinboost"][-1]
    lgbm_rf = results["rf"]["lightgbm"][-1]
    export = results["join_export_seconds"]

    # RF: JoinBoost wins by avoiding materialize/export/load (paper: ~3x;
    # here a smaller factor — EXPERIMENTS.md discusses the compression).
    assert jb_rf < lgbm_rf
    # The export cost alone is a large share of the baseline's total.
    assert export > 0.2 * lgbm_rf
    # GBM: JoinBoost competitive within a small factor (paper: 1.1x faster;
    # our Python engine's per-row throughput vs the baseline's NumPy
    # histogram kernels shifts the balance — see EXPERIMENTS.md).
    assert jb_gbm < 3.0 * lgbm_gbm
    # Sklearn-like exact training is the slowest per iteration.
    sk = results["gbm"]["sklearn(partial)"]
    per_iter_sk = (sk[-1] - export) / len(sk)
    per_iter_lgbm = (lgbm_gbm - export) / _ITER
    assert per_iter_sk > per_iter_lgbm
    # Final model quality parity (paper: "nearly identical").
    rmse = results["final_rmse"]
    assert abs(rmse["joinboost"] - rmse["lightgbm"]) < 0.25 * rmse["lightgbm"]
