"""CI perf smoke: downsized Figure 5 + Figure 9 with hard gates.

Runs in the ``perf-smoke`` CI job (see .github/workflows/ci.yml), writes
``BENCH_ci.json`` as a build artifact — the start of the bench
trajectory — and exits non-zero when a gate fails:

* **census** — the batched frontier evaluator must issue no more split
  queries than the per-leaf path, and at most one fused query per
  feature-bearing relation per frontier round;
* **wall** — batched training must not regress to more than ``WALL_RATIO``
  times the per-leaf wall time (absolute seconds are machine-dependent,
  the ratio is not);
* **parity** — both modes must train the same model (rmse to 1e-9).

Sizes are deliberately small (seconds, not minutes): this is a smoke
gate, not the paper reproduction — ``pytest benchmarks/`` is that.

Run locally:  PYTHONPATH=src python benchmarks/ci_perf_smoke.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.bench.harness import fig05_residual_updates, fig09_batching_comparison

#: batched wall time may be at most this multiple of per-leaf wall time
WALL_RATIO = 2.0

FIG5_SMOKE_ROWS = 60_000
FIG5_SMOKE_BACKENDS = ("x-col", "d-mem", "d-swap")
FIG5_SMOKE_METHODS = ("naive", "update", "create-0", "swap")

FIG9_SMOKE_ROWS = 8_000
FIG9_SMOKE_FEATURES = 18
FIG9_SMOKE_LEAVES = 8


def run_smoke() -> dict:
    start = time.perf_counter()
    fig05 = fig05_residual_updates(
        num_rows=FIG5_SMOKE_ROWS,
        backends=FIG5_SMOKE_BACKENDS,
        methods=FIG5_SMOKE_METHODS,
    )
    fig09 = fig09_batching_comparison(
        num_fact_rows=FIG9_SMOKE_ROWS,
        num_features=FIG9_SMOKE_FEATURES,
        num_leaves=FIG9_SMOKE_LEAVES,
    )
    return {
        "schema": "bench-ci-v1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "total_seconds": time.perf_counter() - start,
        "fig05": {
            backend: methods for backend, methods in fig05.items()
        },
        "fig09": {
            "per_leaf_feature_queries":
                fig09["per_leaf"]["num_feature_queries"],
            "batched_feature_queries":
                fig09["batched"]["num_feature_queries"],
            "batched_rounds": fig09["batched"]["num_frontier_queries"],
            "feature_relations": fig09["batched"]["num_feature_relations"],
            "per_leaf_wall_seconds": fig09["per_leaf"]["wall_seconds"],
            "batched_wall_seconds": fig09["batched"]["wall_seconds"],
            "query_drop_factor": fig09["query_drop_factor"],
            "rmse_delta": fig09["rmse_delta"],
        },
    }


def gate(results: dict) -> list:
    """Return the list of failed-gate messages (empty = pass)."""
    fig09 = results["fig09"]
    failures = []
    if fig09["batched_feature_queries"] > fig09["per_leaf_feature_queries"]:
        failures.append(
            "census: batched split-query count "
            f"({fig09['batched_feature_queries']}) exceeds per-leaf "
            f"({fig09['per_leaf_feature_queries']})"
        )
    # One fused query per feature-bearing relation per round.  (A relation
    # mixing string and numeric features would issue one per value kind;
    # the Favorita smoke schema is all-numeric, so the tight bound holds.)
    budget = fig09["feature_relations"] * max(fig09["batched_rounds"], 1)
    if fig09["batched_feature_queries"] > budget:
        failures.append(
            "census: batched split-query count "
            f"({fig09['batched_feature_queries']}) exceeds relations x "
            f"rounds ({budget})"
        )
    if fig09["batched_wall_seconds"] > WALL_RATIO * fig09["per_leaf_wall_seconds"]:
        failures.append(
            f"wall: batched iteration took {fig09['batched_wall_seconds']:.2f}s"
            f" vs per-leaf {fig09['per_leaf_wall_seconds']:.2f}s"
            f" (> {WALL_RATIO}x regression gate)"
        )
    if fig09["rmse_delta"] > 1e-9:
        failures.append(
            f"parity: batched/per-leaf rmse differ by {fig09['rmse_delta']:.3e}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_ci.json", help="where to write the report"
    )
    args = parser.parse_args(argv)

    results = run_smoke()
    failures = gate(results)
    results["gates"] = {"passed": not failures, "failures": failures}
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)

    fig09 = results["fig09"]
    print(
        f"fig09 split queries: per-leaf={fig09['per_leaf_feature_queries']} "
        f"batched={fig09['batched_feature_queries']} "
        f"(drop {fig09['query_drop_factor']:.1f}x, "
        f"rounds={fig09['batched_rounds']}, "
        f"relations={fig09['feature_relations']})"
    )
    print(
        f"fig09 wall: per-leaf={fig09['per_leaf_wall_seconds']:.2f}s "
        f"batched={fig09['batched_wall_seconds']:.2f}s; "
        f"rmse delta={fig09['rmse_delta']:.2e}"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print(f"PERF GATE FAILED — {failure}", file=sys.stderr)
        return 1
    print("all perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
