"""CI perf smoke: downsized Figure 5 + Figure 9 with hard gates.

Runs in the ``perf-smoke`` CI job (see .github/workflows/ci.yml), writes
``BENCH_ci.json`` as a build artifact — the bench trajectory whose
per-PR snapshots live at the repo root (``BENCH_pr3.json``, ...) — and
exits non-zero when a gate fails:

* **census** — the batched frontier evaluator must issue no more split
  queries than the per-leaf path, and at most one fused query per
  feature-bearing relation per frontier round;
* **labels** — incremental frontier state must do zero full-fact label
  rebuilds after the one root pass per tree, at most two delta updates
  per committed split, write at least ``LABEL_BYTES_MIN_DROP`` times
  fewer label bytes than the per-round rebuild, and score carry-message
  cache hits;
* **wall** — batched training must not regress to more than
  ``WALL_RATIO`` times the per-leaf wall time, nor incremental labeling
  to more than ``WALL_RATIO`` times rebuild labeling (absolute seconds
  are machine-dependent, the ratios are not);
* **parity** — all three modes must train the same model (rmse to 1e-9);
* **encoding** — on the string-keyed Figure 9 config (embedded,
  ``split_batching="auto"``, ``frontier_state="incremental"``) the
  version-stamped encoded-key cache must cut full key-encode passes by
  at least ``ENCODING_PASS_MIN_DROP``x and end-to-end train wall by at
  least ``ENCODING_WALL_MIN_SPEEDUP``x vs ``encoding_cache="off"``,
  with tree-for-tree parity between the two;
* **parallel** — on the Figure 9 CI config lifted onto the sqlite
  backend, training with ``num_workers=4`` must engage the scheduler
  (parallel rounds > 0, measured query overlap > 0), match the serial
  model exactly (zero rmse delta), and — on multi-core hosts — beat
  ``num_workers=1`` wall time by at least ``PARALLEL_MIN_SPEEDUP``x.
  The speedup gate is *waived* (recorded, not enforced) when the host
  has a single CPU: threads cannot beat physics, but the engagement,
  overlap and parity gates still run everywhere;
* **serving** — on a downsized serving config the compiled tree-bank
  kernel must beat recursive scoring by at least
  ``SERVING_MIN_SPEEDUP``x single-row-equivalent throughput on
  request-shaped (one-row) calls; the in-harness parity asserts also
  make this leg fail if compiled or SQL scores ever drift from the
  recursive reference;
* **gateway** — the resilient serving gateway (PR 10) under concurrent
  clients: the healthy leg must serve every request with zero sheds and
  zero degradations; the overload leg (one in-flight slot, one-deep
  queue, injected ``serve_key`` latency) must shed past the bound
  rather than queue unboundedly; the fault leg (every ``serve_sql``
  statement failing transiently) must serve every request bit-identical
  to the healthy compiled path, stamp every degradation, and trip the
  ``sql`` circuit breaker;
* **fault-tolerance** — on a downsized Favorita config (sqlite,
  ``num_workers=4``) per-round checkpointing must cost at most
  ``CKPT_MAX_OVERHEAD``x baseline wall (plus a small absolute grace for
  second-scale noise), chaos-injected transient faults must be retried
  (retries > 0, none exhausted) without changing the model digest, and
  a run killed mid-training then resumed from its checkpoint must
  reproduce the uninterrupted digest bit for bit;
* **sharded** — the hash-sharded training path must produce a
  bit-identical ``model_digest`` across shard counts {1, 4} and
  executors {serial, process}, with and without ``worker_crash`` /
  ``stall`` task faults; the chaos legs must record redispatched tasks
  (``tasks_redispatched > 0``) with nothing exhausted, and every leg
  must report a measured wall > 0 — the shard steps really executed,
  only the network is modelled;
* **duckdb** — on the Figure 9 CI config the duckdb backend must train
  the same model as the embedded engine (rmse to 1e-9), grow
  bit-identical models across ``num_workers`` in {1, 4}
  (``model_digest`` equality), engage the scheduler (parallel rounds >
  0, no fallback reason), and finish no slower than the sqlite
  dialect-translation path on the same workload.  All duckdb gates are
  *waived* (recorded as unavailable, not enforced) when the optional
  ``duckdb`` package is not installed — the CI ``perf-smoke`` job
  installs it, so the gates bind there.

Sizes are deliberately small (seconds, not minutes): this is a smoke
gate, not the paper reproduction — ``pytest benchmarks/`` is that.

Run locally:  PYTHONPATH=src python benchmarks/ci_perf_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.bench.harness import (
    fault_tolerance_comparison,
    fig05_residual_updates,
    fig09_duckdb_comparison,
    fig09_encoding_cache_comparison,
    fig09_parallel_comparison,
    fig09_query_census,
    fig12_sharded_comparison,
)
from repro.bench.serving import (
    gateway_concurrency_benchmark,
    serving_latency_benchmark,
)

# Sibling bench script: running `python benchmarks/ci_perf_smoke.py`
# puts benchmarks/ on sys.path, so the shared gate logic imports direct.
from bench_serving import gateway_gate_failures

#: batched wall time may be at most this multiple of per-leaf wall time
#: (and incremental labeling at most this multiple of rebuild labeling)
WALL_RATIO = 2.0

#: incremental label maintenance must write at least this many times
#: fewer label bytes than per-round full-fact rebuilds
LABEL_BYTES_MIN_DROP = 5.0

#: the encoded-key cache must cut full key-encode passes by this factor
ENCODING_PASS_MIN_DROP = 5.0

#: ... and end-to-end train wall by this factor (string-keyed config)
ENCODING_WALL_MIN_SPEEDUP = 1.3

#: sqlite num_workers=4 must beat num_workers=1 wall time by this factor
#: on multi-core hosts (single-core hosts record the ratio but waive it)
PARALLEL_MIN_SPEEDUP = 1.2

#: the worker-pool size of the parallel leg
PARALLEL_WORKERS = 4

#: compiled request-shaped scoring must beat recursive by this factor
SERVING_MIN_SPEEDUP = 5.0

#: duckdb num_workers=4 wall must be no worse than sqlite num_workers=4
#: on the same workload (factor = sqlite wall / duckdb wall)
DUCKDB_VS_SQLITE_MIN_FACTOR = 1.0

#: per-round checkpointing may cost at most this multiple of the
#: fault-free baseline wall time ...
CKPT_MAX_OVERHEAD = 1.05

#: ... plus this absolute grace: the smoke legs run in ~1s, where timer
#: noise alone can exceed 5% (the ratio gate is the real contract)
CKPT_ABS_GRACE_SECONDS = 0.75

#: fault-tolerance leg sizing (sqlite backend, the parallel workload)
FAULT_SMOKE_ROWS = 8_000
FAULT_SMOKE_ITERATIONS = 3

#: sharded leg sizing: integer-valued target so cross-shard merges are
#: exact, small enough that five cluster runs finish in seconds
SHARDED_SMOKE_ROWS = 4_096

#: per-shard-step deadline for the sharded stall leg (seconds); the
#: stall leg costs about one deadline of wall waiting the timer out
SHARDED_TASK_DEADLINE = 5.0

#: serving leg: small enough to train in seconds, deep enough that the
#: per-node dispatch cost of recursive scoring is visible per request
SERVING_ROWS = 12_000
SERVING_TREES = 10
SERVING_LEAVES = 32
SERVING_REQUESTS = 60

#: gateway leg: enough rows that a request does real work, enough
#: clients (>= 4) that admission control and the breakers are genuinely
#: exercised concurrently
GATEWAY_ROWS = 6_000
GATEWAY_CLIENTS = 4
GATEWAY_REQUESTS_PER_CLIENT = 6
GATEWAY_FAULT_REQUESTS = 4

FIG5_SMOKE_ROWS = 60_000
FIG5_SMOKE_BACKENDS = ("x-col", "d-mem", "d-swap")
FIG5_SMOKE_METHODS = ("naive", "update", "create-0", "swap")

FIG9_SMOKE_ROWS = 8_000
FIG9_SMOKE_FEATURES = 18
FIG9_SMOKE_LEAVES = 8

#: encoding-cache leg: string natural keys (the raw Favorita join-key
#: dtype) at a size where per-query re-encoding visibly dominates
FIG9_ENCODING_ROWS = 30_000


def run_smoke() -> dict:
    start = time.perf_counter()
    fig05 = fig05_residual_updates(
        num_rows=FIG5_SMOKE_ROWS,
        backends=FIG5_SMOKE_BACKENDS,
        methods=FIG5_SMOKE_METHODS,
    )
    per_leaf = fig09_query_census(
        FIG9_SMOKE_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        split_batching="off",
    )
    rebuild = fig09_query_census(
        FIG9_SMOKE_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        split_batching="on", frontier_state="rebuild",
    )
    incremental = fig09_query_census(
        FIG9_SMOKE_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        split_batching="on", frontier_state="incremental",
    )
    encoding = fig09_encoding_cache_comparison(
        FIG9_ENCODING_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        key_dtype="str",
    )
    parallel = fig09_parallel_comparison(
        FIG9_SMOKE_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        workers=PARALLEL_WORKERS, backend="sqlite",
    )
    duckdb = fig09_duckdb_comparison(
        FIG9_SMOKE_ROWS, FIG9_SMOKE_FEATURES, FIG9_SMOKE_LEAVES,
        workers=PARALLEL_WORKERS,
    )
    sharded = fig12_sharded_comparison(
        rows=SHARDED_SMOKE_ROWS,
        task_deadline=SHARDED_TASK_DEADLINE,
    )
    fault = fault_tolerance_comparison(
        num_fact_rows=FAULT_SMOKE_ROWS,
        num_leaves=FIG9_SMOKE_LEAVES,
        iterations=FAULT_SMOKE_ITERATIONS,
        backend="sqlite",
        workers=PARALLEL_WORKERS,
    )
    serving = serving_latency_benchmark(
        num_rows=SERVING_ROWS,
        num_trees=SERVING_TREES,
        num_leaves=SERVING_LEAVES,
        request_count=SERVING_REQUESTS,
        bulk_reps=3,
        sql_reps=1,
        key_lookups=5,
    )
    gateway = gateway_concurrency_benchmark(
        num_rows=GATEWAY_ROWS,
        num_trees=SERVING_TREES,
        num_leaves=SERVING_LEAVES,
        num_clients=GATEWAY_CLIENTS,
        requests_per_client=GATEWAY_REQUESTS_PER_CLIENT,
        fault_requests=GATEWAY_FAULT_REQUESTS,
    )
    inc_census = incremental["frontier_census"]
    reb_census = rebuild["frontier_census"]
    cpu_count = os.cpu_count() or 1
    return {
        "schema": "bench-ci-v9",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "total_seconds": time.perf_counter() - start,
        "fig05": {
            backend: methods for backend, methods in fig05.items()
        },
        "fig09": {
            "per_leaf_feature_queries": per_leaf["num_feature_queries"],
            "batched_feature_queries": incremental["num_feature_queries"],
            "rebuild_feature_queries": rebuild["num_feature_queries"],
            "batched_rounds": inc_census.get("batched_rounds", 0),
            "rebuild_rounds": reb_census.get("batched_rounds", 0),
            "feature_relations": incremental["num_feature_relations"],
            "per_leaf_wall_seconds": per_leaf["wall_seconds"],
            "rebuild_wall_seconds": rebuild["wall_seconds"],
            "batched_wall_seconds": incremental["wall_seconds"],
            "query_drop_factor": per_leaf["num_feature_queries"]
            / max(incremental["num_feature_queries"], 1),
            "rmse_delta": abs(per_leaf["rmse"] - incremental["rmse"]),
            "rebuild_rmse_delta": abs(rebuild["rmse"] - incremental["rmse"]),
        },
        "labels": {
            "rebuild_label_queries": reb_census.get("label_queries", 0),
            "incremental_label_queries": inc_census.get("label_queries", 0),
            "root_label_passes": inc_census.get("root_label_passes", 0),
            "delta_label_updates": inc_census.get("delta_label_updates", 0),
            "rebuild_label_bytes": rebuild["label_bytes_written"],
            "incremental_label_bytes": incremental["label_bytes_written"],
            "label_bytes_drop_factor": rebuild["label_bytes_written"]
            / max(incremental["label_bytes_written"], 1),
            "carry_cache_hits": incremental["carry_cache_hits"],
        },
        "encoding": {
            "key_dtype": "str",
            "rows": FIG9_ENCODING_ROWS,
            "off_encode_passes": encoding["off"]["encode_passes"],
            "on_encode_passes": encoding["on"]["encode_passes"],
            "encode_pass_drop_factor": encoding["encode_pass_drop_factor"],
            "off_wall_seconds": encoding["off"]["wall_seconds"],
            "on_wall_seconds": encoding["on"]["wall_seconds"],
            "wall_speedup_factor": encoding["wall_speedup_factor"],
            "off_encode_seconds": encoding["encode_seconds_off"],
            "on_encode_seconds": encoding["encode_seconds_on"],
            "cache_stats": encoding["on"]["encoding_cache_stats"],
            "rmse_delta": encoding["rmse_delta"],
        },
        "parallel": {
            "backend": parallel["backend"],
            "workers": parallel["workers"],
            "cpu_count": cpu_count,
            # The measured-speedup gate only binds where parallel speedup
            # is physically possible; engagement/overlap/parity always gate.
            "speedup_gate_active": cpu_count >= 2,
            "serial_wall_seconds": parallel["serial"]["wall_seconds"],
            "parallel_wall_seconds": parallel["parallel"]["wall_seconds"],
            "wall_speedup_factor": parallel["wall_speedup_factor"],
            "parallel_rounds": parallel["parallel_rounds"],
            "parallel_overlap_seconds": parallel["parallel_overlap_seconds"],
            "rmse_delta": parallel["rmse_delta"],
        },
        "duckdb": {
            # All gates on this leg are waived when available=False: the
            # optional package cannot be measured where it isn't installed.
            "available": duckdb["available"],
            "reason": duckdb.get("reason"),
            "workers": PARALLEL_WORKERS,
            "rmse_delta_vs_embedded": duckdb.get("rmse_delta_vs_embedded"),
            "digest_match_across_workers": duckdb.get(
                "digest_match_across_workers"
            ),
            "parallel_rounds": duckdb.get("parallel_rounds"),
            "parallel_fallback_reason": duckdb.get("parallel_fallback_reason"),
            "embedded_wall_seconds": duckdb.get("embedded", {}).get(
                "wall_seconds"
            ),
            "duckdb_serial_wall_seconds": duckdb.get("duckdb_serial", {}).get(
                "wall_seconds"
            ),
            "duckdb_parallel_wall_seconds": duckdb.get(
                "duckdb_parallel", {}
            ).get("wall_seconds"),
            "sqlite_parallel_wall_seconds": duckdb.get(
                "sqlite_parallel", {}
            ).get("wall_seconds"),
            "duckdb_vs_sqlite_wall_factor": duckdb.get(
                "duckdb_vs_sqlite_wall_factor"
            ),
        },
        "fault_tolerance": {
            "backend": fault["backend"],
            "workers": fault["workers"],
            "iterations": fault["iterations"],
            "baseline_wall_seconds": fault["baseline_wall_seconds"],
            "checkpoint_wall_seconds": fault["checkpoint_wall_seconds"],
            "checkpoint_overhead_factor": fault[
                "checkpoint_overhead_factor"
            ],
            "checkpoint_saves": fault["checkpoint_saves"],
            "checkpoint_digest_match": fault["checkpoint_digest_match"],
            "chaos_wall_seconds": fault["chaos_wall_seconds"],
            "chaos_digest_match": fault["chaos_digest_match"],
            "chaos_injected": fault["chaos_injected"],
            "retries": fault["retries"],
            "retry_exhausted": fault["retry_exhausted"],
            "recovered_after_retry": fault["recovered_after_retry"],
            "resume_wall_seconds": fault["resume_wall_seconds"],
            "resumed_digest_match": fault["resumed_digest_match"],
            "resumed_from_round": fault["resumed_from_round"],
        },
        "sharded": {
            "rows": sharded["rows"],
            "digest_parity": sharded["digest_parity"],
            "chaos_tasks_redispatched": sharded["chaos_tasks_redispatched"],
            "retry_exhausted": sharded["retry_exhausted"],
            "legs": sharded["legs"],
        },
        "serving": {
            "rows": SERVING_ROWS,
            "trees": SERVING_TREES,
            "request_rows": serving["request"]["rows_per_request"],
            "recursive_request_p50_seconds": serving["request"]["recursive"][
                "p50_seconds"
            ],
            "compiled_request_p50_seconds": serving["request"]["compiled"][
                "p50_seconds"
            ],
            "request_speedup_factor": serving["compiled_speedup_factor"],
            "bulk_speedup_factor": serving["bulk"]["compiled_speedup_factor"],
            "key_lookup_p50_seconds": serving["key_lookup"]["p50_seconds"],
            "cache_stats": serving["cache_stats"],
        },
        # Raw gateway legs: gate() reads them through the same
        # gateway_gate_failures() bench_serving.py enforces standalone.
        "gateway": gateway,
    }


def gate(results: dict) -> list:
    """Return the list of failed-gate messages (empty = pass)."""
    fig09 = results["fig09"]
    labels = results["labels"]
    failures = []
    if fig09["batched_feature_queries"] > fig09["per_leaf_feature_queries"]:
        failures.append(
            "census: batched split-query count "
            f"({fig09['batched_feature_queries']}) exceeds per-leaf "
            f"({fig09['per_leaf_feature_queries']})"
        )
    # One fused query per feature-bearing relation per round.  (A relation
    # mixing string and numeric features would issue one per value kind;
    # the Favorita smoke schema is all-numeric, so the tight bound holds.)
    budget = fig09["feature_relations"] * max(fig09["batched_rounds"], 1)
    if fig09["batched_feature_queries"] > budget:
        failures.append(
            "census: batched split-query count "
            f"({fig09['batched_feature_queries']}) exceeds relations x "
            f"rounds ({budget})"
        )
    if fig09["batched_wall_seconds"] > WALL_RATIO * fig09["per_leaf_wall_seconds"]:
        failures.append(
            f"wall: batched iteration took {fig09['batched_wall_seconds']:.2f}s"
            f" vs per-leaf {fig09['per_leaf_wall_seconds']:.2f}s"
            f" (> {WALL_RATIO}x regression gate)"
        )
    if fig09["batched_wall_seconds"] > WALL_RATIO * fig09["rebuild_wall_seconds"]:
        failures.append(
            "wall: incremental labeling took "
            f"{fig09['batched_wall_seconds']:.2f}s vs rebuild "
            f"{fig09['rebuild_wall_seconds']:.2f}s"
            f" (> {WALL_RATIO}x regression gate)"
        )
    if fig09["rmse_delta"] > 1e-9:
        failures.append(
            f"parity: batched/per-leaf rmse differ by {fig09['rmse_delta']:.3e}"
        )
    if fig09["rebuild_rmse_delta"] > 1e-9:
        failures.append(
            "parity: incremental/rebuild rmse differ by "
            f"{fig09['rebuild_rmse_delta']:.3e}"
        )
    # Incremental frontier state: no full-fact relabel after the root
    # pass, bounded delta updates, and a real label-byte reduction.
    if labels["incremental_label_queries"] != 0:
        failures.append(
            "labels: incremental mode issued "
            f"{labels['incremental_label_queries']} full-fact label rebuilds"
        )
    if labels["root_label_passes"] != 1:
        failures.append(
            f"labels: expected 1 root label pass per tree, saw "
            f"{labels['root_label_passes']}"
        )
    if labels["delta_label_updates"] > 2 * (FIG9_SMOKE_LEAVES - 1):
        failures.append(
            "labels: delta update census grew past two per committed "
            f"split ({labels['delta_label_updates']})"
        )
    if labels["label_bytes_drop_factor"] < LABEL_BYTES_MIN_DROP:
        failures.append(
            "labels: label bytes written dropped only "
            f"{labels['label_bytes_drop_factor']:.2f}x vs rebuild "
            f"(gate: >= {LABEL_BYTES_MIN_DROP}x)"
        )
    if labels["carry_cache_hits"] <= 0:
        failures.append("labels: carry-message cache scored no hits")
    # Encoded-key cache: a real pass drop, a real wall win, no model drift.
    encoding = results["encoding"]
    if encoding["encode_pass_drop_factor"] < ENCODING_PASS_MIN_DROP:
        failures.append(
            "encoding: key-encode passes dropped only "
            f"{encoding['encode_pass_drop_factor']:.2f}x "
            f"(gate: >= {ENCODING_PASS_MIN_DROP}x)"
        )
    if encoding["wall_speedup_factor"] < ENCODING_WALL_MIN_SPEEDUP:
        failures.append(
            "encoding: cache sped training up only "
            f"{encoding['wall_speedup_factor']:.2f}x "
            f"(gate: >= {ENCODING_WALL_MIN_SPEEDUP}x)"
        )
    if encoding["rmse_delta"] > 1e-9:
        failures.append(
            "encoding: cache-on/cache-off rmse differ by "
            f"{encoding['rmse_delta']:.3e}"
        )
    # Inter-query parallelism: the pool must engage, overlap real query
    # time, stay tree-for-tree identical to serial, and (multi-core) win.
    parallel = results["parallel"]
    if parallel["parallel_rounds"] <= 0:
        failures.append(
            "parallel: num_workers=4 training never engaged the scheduler"
        )
    if parallel["parallel_overlap_seconds"] <= 0.0:
        failures.append(
            "parallel: scheduler rounds measured zero query overlap"
        )
    if parallel["rmse_delta"] != 0.0:
        failures.append(
            "parallel: num_workers=4 and num_workers=1 grew different "
            f"models (rmse delta {parallel['rmse_delta']:.3e})"
        )
    if (
        parallel["speedup_gate_active"]
        and parallel["wall_speedup_factor"] < PARALLEL_MIN_SPEEDUP
    ):
        failures.append(
            "parallel: sqlite num_workers=4 sped training up only "
            f"{parallel['wall_speedup_factor']:.2f}x on a "
            f"{parallel['cpu_count']}-core host "
            f"(gate: >= {PARALLEL_MIN_SPEEDUP}x)"
        )
    # DuckDB backend: embedded parity, bit-identical fan-out, an engaged
    # scheduler, and no wall regression vs the sqlite translation path.
    # Waived entirely when the optional package is absent (recorded).
    duckdb = results["duckdb"]
    if duckdb["available"]:
        if duckdb["rmse_delta_vs_embedded"] > 1e-9:
            failures.append(
                "duckdb: rmse differs from embedded by "
                f"{duckdb['rmse_delta_vs_embedded']:.3e}"
            )
        if not duckdb["digest_match_across_workers"]:
            failures.append(
                "duckdb: num_workers=4 and num_workers=1 grew models with "
                "different digests"
            )
        if duckdb["parallel_rounds"] <= 0:
            failures.append(
                "duckdb: num_workers=4 training never engaged the scheduler"
                f" (fallback: {duckdb['parallel_fallback_reason']})"
            )
        if (
            duckdb["duckdb_vs_sqlite_wall_factor"]
            < DUCKDB_VS_SQLITE_MIN_FACTOR
        ):
            failures.append(
                "duckdb: native wall "
                f"{duckdb['duckdb_parallel_wall_seconds']:.2f}s slower than "
                f"sqlite {duckdb['sqlite_parallel_wall_seconds']:.2f}s "
                f"(factor {duckdb['duckdb_vs_sqlite_wall_factor']:.2f}, "
                f"gate: >= {DUCKDB_VS_SQLITE_MIN_FACTOR}x)"
            )
    # Fault tolerance: checkpointing stays cheap, chaos faults retry to
    # the same bits, and an interrupted run resumes to the same bits.
    fault = results["fault_tolerance"]
    ckpt_budget = (
        CKPT_MAX_OVERHEAD * fault["baseline_wall_seconds"]
        + CKPT_ABS_GRACE_SECONDS
    )
    if fault["checkpoint_wall_seconds"] > ckpt_budget:
        failures.append(
            "fault: checkpointed training took "
            f"{fault['checkpoint_wall_seconds']:.2f}s vs baseline "
            f"{fault['baseline_wall_seconds']:.2f}s "
            f"(gate: <= {CKPT_MAX_OVERHEAD}x + "
            f"{CKPT_ABS_GRACE_SECONDS}s grace)"
        )
    if not fault["checkpoint_digest_match"]:
        failures.append("fault: checkpointing changed the model digest")
    if not fault["chaos_digest_match"]:
        failures.append(
            "fault: chaos-injected training grew a different model"
        )
    if fault["chaos_injected"] <= 0 or fault["retries"] <= 0:
        failures.append(
            "fault: chaos leg injected "
            f"{fault['chaos_injected']} faults but recorded "
            f"{fault['retries']} retries (both must be > 0)"
        )
    if fault["retry_exhausted"] != 0:
        failures.append(
            f"fault: {fault['retry_exhausted']} queries exhausted the "
            "retry policy on a plan the policy is sized to absorb"
        )
    if not fault["resumed_digest_match"]:
        failures.append(
            "fault: resumed run's digest differs from the uninterrupted "
            "baseline"
        )
    if fault["checkpoint_saves"] != fault["iterations"]:
        failures.append(
            "fault: expected one checkpoint per round "
            f"({fault['iterations']}), saw {fault['checkpoint_saves']}"
        )
    # Sharded training: bit-identical digests across shard counts and
    # executors, observable recovery under task faults, measured walls.
    sharded = results["sharded"]
    if not sharded["digest_parity"]:
        failures.append(
            "sharded: legs grew models with different digests "
            + ", ".join(
                f"{leg['name']}={leg['digest'][:12]}"
                for leg in sharded["legs"]
            )
        )
    if sharded["chaos_tasks_redispatched"] <= 0:
        failures.append(
            "sharded: chaos legs recorded zero redispatched tasks "
            "(faults were not injected or not recovered)"
        )
    if sharded["retry_exhausted"] != 0:
        failures.append(
            f"sharded: {sharded['retry_exhausted']} shard steps exhausted "
            "their retry budget on a plan sized to be absorbed"
        )
    for leg in sharded["legs"]:
        if leg["measured_wall_seconds"] <= 0:
            failures.append(
                f"sharded: leg {leg['name']} reported no measured wall "
                "(shard steps did not actually execute)"
            )
        if leg["chaos"] is not None and leg["tasks_redispatched"] <= 0:
            failures.append(
                f"sharded: chaos leg {leg['name']} never redispatched "
                "its faulted shard step"
            )
    # Compiled serving: request-shaped scoring must clearly beat the
    # recursive path (parity is asserted inside the harness itself).
    serving = results["serving"]
    if serving["request_speedup_factor"] < SERVING_MIN_SPEEDUP:
        failures.append(
            "serving: compiled request throughput only "
            f"{serving['request_speedup_factor']:.2f}x recursive "
            f"(gate: >= {SERVING_MIN_SPEEDUP}x)"
        )
    # Resilient gateway: healthy concurrency clean, overload sheds,
    # faults degrade with bit-parity and an open breaker.
    failures.extend(gateway_gate_failures(results["gateway"]))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_ci.json", help="where to write the report"
    )
    args = parser.parse_args(argv)

    results = run_smoke()
    failures = gate(results)
    results["gates"] = {"passed": not failures, "failures": failures}
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)

    fig09 = results["fig09"]
    labels = results["labels"]
    print(
        f"fig09 split queries: per-leaf={fig09['per_leaf_feature_queries']} "
        f"batched={fig09['batched_feature_queries']} "
        f"(drop {fig09['query_drop_factor']:.1f}x, "
        f"rounds={fig09['batched_rounds']}, "
        f"relations={fig09['feature_relations']})"
    )
    print(
        f"fig09 wall: per-leaf={fig09['per_leaf_wall_seconds']:.2f}s "
        f"rebuild={fig09['rebuild_wall_seconds']:.2f}s "
        f"incremental={fig09['batched_wall_seconds']:.2f}s; "
        f"rmse delta={fig09['rmse_delta']:.2e}"
    )
    print(
        f"labels: rebuild bytes={labels['rebuild_label_bytes']} "
        f"incremental bytes={labels['incremental_label_bytes']} "
        f"(drop {labels['label_bytes_drop_factor']:.1f}x), "
        f"root passes={labels['root_label_passes']}, "
        f"delta updates={labels['delta_label_updates']}, "
        f"carry-cache hits={labels['carry_cache_hits']}"
    )
    encoding = results["encoding"]
    print(
        f"encoding: passes off={encoding['off_encode_passes']} "
        f"on={encoding['on_encode_passes']} "
        f"(drop {encoding['encode_pass_drop_factor']:.1f}x); "
        f"wall off={encoding['off_wall_seconds']:.2f}s "
        f"on={encoding['on_wall_seconds']:.2f}s "
        f"(speedup {encoding['wall_speedup_factor']:.2f}x); "
        f"rmse delta={encoding['rmse_delta']:.1e}"
    )
    parallel = results["parallel"]
    gate_note = (
        "active" if parallel["speedup_gate_active"]
        else f"waived (single core, cpu_count={parallel['cpu_count']})"
    )
    print(
        f"parallel: sqlite wall serial={parallel['serial_wall_seconds']:.2f}s "
        f"workers={parallel['workers']} -> "
        f"{parallel['parallel_wall_seconds']:.2f}s "
        f"(speedup {parallel['wall_speedup_factor']:.2f}x, gate {gate_note}); "
        f"rounds={parallel['parallel_rounds']} "
        f"overlap={parallel['parallel_overlap_seconds']:.2f}s "
        f"rmse delta={parallel['rmse_delta']:.1e}"
    )
    duckdb = results["duckdb"]
    if duckdb["available"]:
        print(
            "duckdb: rmse delta vs embedded="
            f"{duckdb['rmse_delta_vs_embedded']:.1e}, "
            f"digest match={duckdb['digest_match_across_workers']}, "
            f"rounds={duckdb['parallel_rounds']}; wall "
            f"duckdb={duckdb['duckdb_parallel_wall_seconds']:.2f}s "
            f"sqlite={duckdb['sqlite_parallel_wall_seconds']:.2f}s "
            f"(factor {duckdb['duckdb_vs_sqlite_wall_factor']:.2f}x)"
        )
    else:
        print(f"duckdb: gates waived — {duckdb['reason']}")
    fault = results["fault_tolerance"]
    print(
        "fault: ckpt overhead "
        f"{fault['checkpoint_overhead_factor']:.3f}x "
        f"({fault['baseline_wall_seconds']:.2f}s -> "
        f"{fault['checkpoint_wall_seconds']:.2f}s, "
        f"{fault['checkpoint_saves']} saves); chaos injected="
        f"{fault['chaos_injected']} retries={fault['retries']} "
        f"exhausted={fault['retry_exhausted']}; digests "
        f"ckpt={fault['checkpoint_digest_match']} "
        f"chaos={fault['chaos_digest_match']} "
        f"resumed={fault['resumed_digest_match']} "
        f"(resume from round {fault['resumed_from_round']}, "
        f"{fault['resume_wall_seconds']:.2f}s)"
    )
    sharded = results["sharded"]
    crash_leg = next(
        leg for leg in sharded["legs"]
        if leg["name"] == "sharded_process_crash"
    )
    stall_leg = next(
        leg for leg in sharded["legs"]
        if leg["name"] == "sharded_process_stall"
    )
    print(
        f"sharded: digest parity={sharded['digest_parity']} across "
        f"{len(sharded['legs'])} legs; crash leg crashes="
        f"{crash_leg['worker_crashes']} redispatched="
        f"{crash_leg['tasks_redispatched']} "
        f"wall={crash_leg['measured_wall_seconds']:.2f}s; stall leg "
        f"timeouts={stall_leg['deadline_timeouts']} "
        f"wall={stall_leg['measured_wall_seconds']:.2f}s; "
        f"exhausted={sharded['retry_exhausted']}"
    )
    serving = results["serving"]
    print(
        "serving: request p50 recursive="
        f"{serving['recursive_request_p50_seconds'] * 1e3:.2f}ms "
        f"compiled={serving['compiled_request_p50_seconds'] * 1e3:.2f}ms "
        f"(speedup {serving['request_speedup_factor']:.1f}x); "
        f"bulk speedup={serving['bulk_speedup_factor']:.2f}x; "
        f"key lookup p50={serving['key_lookup_p50_seconds'] * 1e3:.2f}ms"
    )
    gateway = results["gateway"]
    healthy = gateway["healthy"]
    fault_leg = gateway["fault"]
    print(
        f"gateway: healthy x{healthy['num_clients']} "
        f"p50={healthy['p50_seconds'] * 1e3:.2f}ms "
        f"p99={healthy['p99_seconds'] * 1e3:.2f}ms "
        f"shed={healthy['shed']} degraded={healthy['degraded']}; "
        f"overload shed={gateway['overload']['shed']}; fault leg "
        f"served={fault_leg['served']}/{fault_leg['requests']} "
        f"degraded={fault_leg['degraded']} "
        f"parity_failures={fault_leg['parity_failures']} "
        f"breaker={fault_leg['breaker_state']}"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print(f"PERF GATE FAILED — {failure}", file=sys.stderr)
        return 1
    print("all perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
