"""Figure 14: gradient boosting over the IMDB galaxy schema via CPT.

Paper shape: the materialized join is prohibitively large (>1 TB for
1.2 GB of base data), so single-table libraries cannot run at all;
JoinBoost with Clustered Predicate Trees trains at a steady per-tree cost,
scaling linearly with the number of iterations.
"""

import numpy as np

from repro.bench.harness import fig14_imdb_galaxy
from repro.bench.report import format_series, format_table


def test_fig14_imdb_galaxy(benchmark, figure_report):
    results = benchmark.pedantic(
        fig14_imdb_galaxy, kwargs={"iterations": 10}, rounds=1, iterations=1
    )
    text = format_series(
        "Figure 14 — cumulative GBM seconds on IMDB (galaxy, CPT)",
        "iteration",
        list(range(1, len(results["cumulative"]) + 1)),
        {"joinboost": results["cumulative"]},
    )
    base_total = sum(results["base_rows"].values())
    text += "\n" + format_table(
        "Join blow-up (why single-table libraries cannot run)",
        ["quantity", "rows"],
        [
            ["base tables total", base_total],
            ["estimated |R⋈|", f"{results['estimated_join_rows']:.3e}"],
            ["blow-up factor", f"{results['estimated_join_rows'] / base_total:.1f}x"],
        ],
    )
    figure_report("fig14", text)

    # The galaxy join explodes by orders of magnitude — materialization
    # is off the table, as in the paper (>1TB from 1.2GB).
    assert results["estimated_join_rows"] > 1000 * base_total
    # Linear scaling: per-iteration cost is steady (no blow-up over time).
    per_iter = results["per_iteration"]
    later = np.mean(per_iter[len(per_iter) // 2:])
    earlier = np.mean(per_iter[: max(1, len(per_iter) // 2)])
    assert later < 3.0 * earlier
