"""Benchmark support: figure reports are printed in the terminal summary
(so they land in bench_output.txt) and mirrored to benchmarks/results/."""

import os

import pytest

_REPORTS = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def figure_report():
    """Call with (name, text) to register a figure's reproduction rows."""

    def record(name: str, text: str) -> None:
        _REPORTS.append((name, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")

    return record


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper figure reproductions")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
