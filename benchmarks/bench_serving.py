"""Serving latency/throughput bench: scoring paths + resilient gateway.

Runs :func:`repro.bench.serving.serving_latency_benchmark` at the PR-6
reference size — p50/p99 per-call latency and throughput for
request-shaped scoring (the gated series), bulk full-frontier scoring
via all three paths, the semi-join point-lookup series, and the
compiled-model cache census — plus (PR 10)
:func:`repro.bench.serving.gateway_concurrency_benchmark`: N concurrent
client threads against the :class:`~repro.serve.ServingGateway`, an
overload leg that must shed past the queue bound, and an injected
``serve_sql`` fault leg whose degraded responses must stay bit-identical
to the healthy compiled path.  Writes ``BENCH_pr10.json``.

Gates (exit non-zero on failure):

* compiled kernel >= ``MIN_SPEEDUP``x recursive single-row-equivalent
  throughput on request-shaped calls;
* healthy concurrent leg: zero sheds, zero degradations;
* overload leg: the bound sheds (at least one
  ``ServiceOverloadedError``), nothing hangs;
* fault leg: every request served, every one degraded with a stamped
  reason, zero parity failures, breaker tripped.

Run locally:  PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import List

from repro.bench.serving import (
    gateway_concurrency_benchmark,
    serving_latency_benchmark,
)

#: compiled request throughput must exceed recursive by this factor
MIN_SPEEDUP = 5.0

BENCH_ROWS = 40_000
BENCH_TREES = 16
BENCH_LEAVES = 64
BENCH_REQUESTS = 200

GATEWAY_ROWS = 8_000
GATEWAY_CLIENTS = 4
GATEWAY_REQUESTS_PER_CLIENT = 12


def _print_path(label: str, stats: dict) -> None:
    print(
        f"{label:>14}: p50={stats['p50_seconds'] * 1e3:.2f}ms "
        f"p99={stats['p99_seconds'] * 1e3:.2f}ms "
        f"throughput={stats['rows_per_second']:,.0f} rows/s"
    )


def gateway_gate_failures(gateway: dict) -> List[str]:
    """The PR-10 resilience gates over the gateway bench legs."""
    failures = []
    healthy = gateway["healthy"]
    if healthy["shed"] or healthy["degraded"]:
        failures.append(
            f"gateway: healthy leg shed {healthy['shed']} and degraded "
            f"{healthy['degraded']} requests (gate: zero of each)"
        )
    expected = healthy["num_clients"] * healthy["requests_per_client"]
    if healthy["served"] != expected:
        failures.append(
            f"gateway: healthy leg served {healthy['served']} of "
            f"{expected} requests"
        )
    overload = gateway["overload"]
    if overload["shed"] < 1:
        failures.append(
            "gateway: overload leg shed nothing past a 1-deep queue "
            f"({overload['num_clients']} concurrent clients)"
        )
    fault = gateway["fault"]
    if fault["served"] != fault["requests"]:
        failures.append(
            f"gateway: fault leg served {fault['served']} of "
            f"{fault['requests']} requests under injected serve_sql faults"
        )
    if fault["degraded"] != fault["served"]:
        failures.append(
            f"gateway: fault leg has {fault['served'] - fault['degraded']} "
            f"unexplained non-degraded responses under a failing backend"
        )
    if fault["parity_failures"]:
        failures.append(
            f"gateway: {fault['parity_failures']} degraded responses "
            f"diverged from the healthy compiled path (gate: bit-parity)"
        )
    if fault["breaker_opens"] < 1:
        failures.append(
            "gateway: sql breaker never opened under persistent faults"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_pr10.json", help="where to write the report"
    )
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--trees", type=int, default=BENCH_TREES)
    parser.add_argument("--leaves", type=int, default=BENCH_LEAVES)
    parser.add_argument("--requests", type=int, default=BENCH_REQUESTS)
    parser.add_argument("--gateway-rows", type=int, default=GATEWAY_ROWS)
    parser.add_argument("--clients", type=int, default=GATEWAY_CLIENTS)
    parser.add_argument(
        "--requests-per-client",
        type=int,
        default=GATEWAY_REQUESTS_PER_CLIENT,
    )
    args = parser.parse_args(argv)

    results = serving_latency_benchmark(
        num_rows=args.rows,
        num_trees=args.trees,
        num_leaves=args.leaves,
        request_count=args.requests,
    )
    results["schema"] = "bench-serving-v3"
    results["python"] = platform.python_version()
    results["machine"] = platform.machine()
    results["gateway"] = gateway_concurrency_benchmark(
        num_rows=args.gateway_rows,
        num_clients=args.clients,
        requests_per_client=args.requests_per_client,
    )

    speedup = results["compiled_speedup_factor"]
    failures = []
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"serving: compiled request throughput only {speedup:.2f}x "
            f"recursive (gate: >= {MIN_SPEEDUP}x)"
        )
    failures.extend(gateway_gate_failures(results["gateway"]))
    results["gates"] = {
        "passed": not failures,
        "min_speedup": MIN_SPEEDUP,
        "failures": failures,
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)

    request = results["request"]
    print(f"request-shaped scoring ({request['rows_per_request']} row/call):")
    _print_path("recursive", request["recursive"])
    _print_path("compiled", request["compiled"])
    print("bulk full-frontier scoring:")
    for path in ("recursive", "compiled", "sql"):
        _print_path(path, results["bulk"][path])
    lookup = results["key_lookup"]
    print(
        f"    key-lookup: p50={lookup['p50_seconds'] * 1e3:.2f}ms "
        f"p99={lookup['p99_seconds'] * 1e3:.2f}ms"
    )
    print(f"compiled vs recursive request speedup: {speedup:.1f}x")
    gateway = results["gateway"]
    healthy = gateway["healthy"]
    print(
        f"gateway healthy x{healthy['num_clients']} clients: "
        f"p50={healthy['p50_seconds'] * 1e3:.2f}ms "
        f"p99={healthy['p99_seconds'] * 1e3:.2f}ms "
        f"shed={healthy['shed']} degraded={healthy['degraded']}"
    )
    overload = gateway["overload"]
    print(
        f"gateway overload x{overload['num_clients']} clients: "
        f"shed={overload['shed']} served={overload['served']} "
        f"max_latency={overload['max_latency_seconds'] * 1e3:.1f}ms"
    )
    fault = gateway["fault"]
    print(
        f"gateway fault leg: served={fault['served']}/{fault['requests']} "
        f"degraded={fault['degraded']} parity_failures="
        f"{fault['parity_failures']} breaker={fault['breaker_state']}"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print(f"SERVING GATE FAILED — {failure}", file=sys.stderr)
        return 1
    print("serving gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
