"""Serving latency/throughput bench: recursive vs compiled vs SQL scoring.

Runs :func:`repro.bench.serving.serving_latency_benchmark` at the PR-6
reference size and writes ``BENCH_pr6.json`` — p50/p99 per-call latency
and throughput for request-shaped scoring (the gated series), bulk
full-frontier scoring via all three paths, the semi-join point-lookup
series, and the compiled-model cache census.

The compiled kernel must beat recursive scoring by at least
``MIN_SPEEDUP``x single-row-equivalent throughput on request-shaped
calls (the same gate ``ci_perf_smoke.py`` enforces on its downsized
config); the run exits non-zero otherwise.

Run locally:  PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.bench.serving import serving_latency_benchmark

#: compiled request throughput must exceed recursive by this factor
MIN_SPEEDUP = 5.0

BENCH_ROWS = 40_000
BENCH_TREES = 16
BENCH_LEAVES = 64
BENCH_REQUESTS = 200


def _print_path(label: str, stats: dict) -> None:
    print(
        f"{label:>14}: p50={stats['p50_seconds'] * 1e3:.2f}ms "
        f"p99={stats['p99_seconds'] * 1e3:.2f}ms "
        f"throughput={stats['rows_per_second']:,.0f} rows/s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_pr6.json", help="where to write the report"
    )
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--trees", type=int, default=BENCH_TREES)
    parser.add_argument("--leaves", type=int, default=BENCH_LEAVES)
    parser.add_argument("--requests", type=int, default=BENCH_REQUESTS)
    args = parser.parse_args(argv)

    results = serving_latency_benchmark(
        num_rows=args.rows,
        num_trees=args.trees,
        num_leaves=args.leaves,
        request_count=args.requests,
    )
    results["schema"] = "bench-serving-v2"
    results["python"] = platform.python_version()
    results["machine"] = platform.machine()

    speedup = results["compiled_speedup_factor"]
    passed = speedup >= MIN_SPEEDUP
    results["gates"] = {
        "passed": passed,
        "min_speedup": MIN_SPEEDUP,
        "failures": []
        if passed
        else [
            f"serving: compiled request throughput only {speedup:.2f}x "
            f"recursive (gate: >= {MIN_SPEEDUP}x)"
        ],
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)

    request = results["request"]
    print(f"request-shaped scoring ({request['rows_per_request']} row/call):")
    _print_path("recursive", request["recursive"])
    _print_path("compiled", request["compiled"])
    print("bulk full-frontier scoring:")
    for path in ("recursive", "compiled", "sql"):
        _print_path(path, results["bulk"][path])
    lookup = results["key_lookup"]
    print(
        f"    key-lookup: p50={lookup['p50_seconds'] * 1e3:.2f}ms "
        f"p99={lookup['p99_seconds'] * 1e3:.2f}ms"
    )
    print(f"compiled vs recursive request speedup: {speedup:.1f}x")
    print(f"report written to {args.output}")
    if not passed:
        print(
            f"SERVING GATE FAILED — {results['gates']['failures'][0]}",
            file=sys.stderr,
        )
        return 1
    print("serving gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
