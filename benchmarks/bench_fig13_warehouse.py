"""Figure 13: decision-tree training in a (simulated) cloud warehouse.

Paper shape: going from 1 to 2 machines introduces a shuffle stage whose
cost eats the compute gain; 4 and 6 machines claw back ~10% / ~25%.  The
network here is the documented cost model over real per-partition
queries, so the 2-machine shuffle penalty appears mechanically.
"""

from repro.bench.harness import fig13_warehouse
from repro.bench.report import format_table


def test_fig13_warehouse(benchmark, figure_report):
    results = benchmark.pedantic(fig13_warehouse, rounds=1, iterations=1)
    figure_report(
        "fig13",
        format_table(
            "Figure 13 — decision tree, simulated seconds vs machines",
            ["machines", "seconds", "shuffle bytes"],
            [list(r) for r in results["rows"]],
        ),
    )
    seconds = {m: s for m, s, _ in results["rows"]}
    shuffles = {m: b for m, _, b in results["rows"]}
    # Shuffle volume grows with machine count.
    assert shuffles[6] > shuffles[1]
    # Scaling out eventually beats two machines (the paper's recovery).
    assert seconds[6] < seconds[2]
