"""Figure 11: gradient-boosting time vs TPC-DS scale factor.

Paper shape: both systems scale linearly in the database size, JoinBoost
with the lower slope; the single-table baseline runs out of memory at
SF=25 (replicated budget, scaled down).
"""

from repro.bench.harness import fig11_tpcds_scaling
from repro.bench.report import format_table


def test_fig11_tpcds_scaling(benchmark, figure_report):
    results = benchmark.pedantic(
        fig11_tpcds_scaling,
        kwargs={"rows_per_sf": 1_500},
        rounds=1, iterations=1,
    )
    rows = [
        [sf, jb, "OOM" if baseline is None else baseline]
        for sf, jb, baseline in results["rows"]
    ]
    figure_report(
        "fig11",
        format_table(
            "Figure 11 — GBM seconds (10 iters) vs TPC-DS scale factor",
            ["SF", "joinboost", "lightgbm"],
            rows,
        ),
    )

    jb = {r[0]: r[1] for r in results["rows"]}
    baseline = {r[0]: r[2] for r in results["rows"]}
    # OOM wall at the largest scale factor (paper: SF=25).
    assert baseline[25] is None
    assert baseline[10] is not None
    # JoinBoost keeps scaling: roughly linear growth, not blow-up.
    assert jb[25] is not None
    assert jb[25] < jb[10] * (25 / 10) * 2.0
