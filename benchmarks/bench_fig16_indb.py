"""Figure 16: in-DB training comparisons.

(a) The ablation Naive -> Batch (LMFAO-style per-node sharing) ->
JoinBoost (inter-node message cache): message sharing among nodes is the
~3x bracket the paper draws.  (b) The MADLib stand-in (non-factorized,
row store) is an order of magnitude slower even on reduced data.
"""

from repro.bench.harness import fig16_indb
from repro.bench.report import format_table


def test_fig16_indb(benchmark, figure_report):
    results = benchmark.pedantic(
        fig16_indb,
        kwargs={"num_fact_rows": 150_000, "num_leaves": 64},
        rounds=1, iterations=1,
    )
    figure_report(
        "fig16",
        format_table(
            "Figure 16 — decision-tree training seconds (64 leaves)",
            ["system", "seconds"],
            [[k, v] for k, v in results.items()],
        ),
    )

    # Message sharing among nodes: JoinBoost beats the per-node-batch
    # (LMFAO-style) variant, which beats naive materialization.  The
    # paper's factors (~3x / ~1.9x) compress at laptop scale but the
    # ordering is the claim (EXPERIMENTS.md).
    assert results["joinboost"] < results["batch"]
    assert results["batch"] < results["naive"]
    # MADLib-style training (row store, no factorization, no caching) is
    # slower than JoinBoost at the same scale (paper: ~16x on PostgreSQL;
    # compressed here because both run on the same vectorized engine).
    assert results["madlib"] > results["joinboost"]
