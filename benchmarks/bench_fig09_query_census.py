"""Figure 9: query census of JoinBoost's first gradient-boosting iteration.

Paper shape: with 8 leaves (15 tree nodes) and 18 features there are
270 = 15 x 18 best-split queries and one message request per join edge per
node; split queries are fast, message queries (join + aggregate +
materialize) form the slow tail of the latency histogram.
"""

from repro.bench.harness import fig09_query_census
from repro.bench.report import format_table

_FEATURES = 18
_LEAVES = 8


def test_fig09_query_census(benchmark, figure_report):
    results = benchmark.pedantic(
        fig09_query_census,
        kwargs={"num_features": _FEATURES, "num_leaves": _LEAVES},
        rounds=1, iterations=1,
    )

    counts, edges = results["latency_histogram_ms"]
    rows = [
        ["feature (best-split)", results["num_feature_queries"]],
        ["message (passing)", results["num_message_queries"]],
        ["expected feature queries", results["expected_feature_queries"]],
    ]
    text = format_table("Figure 9a — query counts, 1st iteration",
                        ["query type", "count"], rows)
    text += "\n" + format_table(
        "Figure 9b — query latency histogram",
        ["bucket >= (ms)", "queries"],
        [[edges[i], counts[i]] for i in range(len(counts))],
    )
    figure_report("fig09", text)

    # 15 nodes x 18 features best-split queries, exactly as the paper counts.
    assert results["num_feature_queries"] == results["expected_feature_queries"]
    assert results["num_feature_queries"] == (2 * _LEAVES - 1) * _FEATURES
    # Messages exist and are far fewer than split queries (caching).
    assert 0 < results["num_message_queries"] < results["num_feature_queries"]
    # The slowest message query dominates the slowest split query
    # (join+materialize vs scan of a per-value aggregate).
    assert max(results["message_ms"]) > max(results["feature_ms"]) * 0.5
