"""Figure 9: query census of JoinBoost's first gradient-boosting iteration.

Paper shape (per-leaf mode): with 8 leaves (15 tree nodes) and 18 features
there are 270 = 15 x 18 best-split queries and one message request per
join edge per node; split queries are fast, message queries (join +
aggregate + materialize) form the slow tail of the latency histogram.

Batched mode (the Section 5 batching optimization): each frontier round
fuses a relation's features into one UNION ALL query with leaf membership
as a grouping column, dropping the split-query count from
O(leaves x features) to O(relations) per round — with tree-for-tree
parity (identical rmse) between the two modes.  Leaf membership itself
is maintained incrementally (one root pass per tree + two narrow
UPDATEs per split) rather than rebuilt per round; the second figure
reports the label passes, label bytes and carry-cache hit rate of both
strategies.
"""

from repro.bench.harness import (
    fig09_batching_comparison,
    fig09_encoding_cache_comparison,
    fig09_frontier_state_comparison,
)
from repro.bench.report import format_table

_FEATURES = 18
_LEAVES = 8


def test_fig09_query_census(benchmark, figure_report):
    results = benchmark.pedantic(
        fig09_batching_comparison,
        kwargs={"num_features": _FEATURES, "num_leaves": _LEAVES},
        rounds=1, iterations=1,
    )
    per_leaf = results["per_leaf"]
    batched = results["batched"]

    counts, edges = per_leaf["latency_histogram_ms"]
    rows = [
        ["feature (best-split), per-leaf", per_leaf["num_feature_queries"]],
        ["feature (best-split), batched", batched["num_feature_queries"]],
        ["message (passing), per-leaf", per_leaf["num_message_queries"]],
        ["message (passing), batched", batched["num_message_queries"]],
        ["frontier labeling, batched", batched["num_frontier_queries"]],
        ["expected per-leaf feature queries",
         per_leaf["expected_feature_queries"]],
        ["query drop factor", round(results["query_drop_factor"], 1)],
    ]
    text = format_table("Figure 9a — query counts, 1st iteration",
                        ["query type", "count"], rows)
    text += "\n" + format_table(
        "Figure 9b — query latency histogram (per-leaf)",
        ["bucket >= (ms)", "queries"],
        [[edges[i], counts[i]] for i in range(len(counts))],
    )
    figure_report("fig09", text)

    # 15 nodes x 18 features best-split queries, exactly as the paper counts.
    assert per_leaf["num_feature_queries"] == per_leaf["expected_feature_queries"]
    assert per_leaf["num_feature_queries"] == (2 * _LEAVES - 1) * _FEATURES
    # Messages exist and are far fewer than split queries (caching).
    assert 0 < per_leaf["num_message_queries"] < per_leaf["num_feature_queries"]
    # The slowest message query dominates the slowest split query
    # (join+materialize vs scan of a per-value aggregate).
    assert max(per_leaf["message_ms"]) > max(per_leaf["feature_ms"]) * 0.5

    # Batched mode: at most one fused split query per feature-bearing
    # relation per frontier round (one labeling query marks each round),
    # and never more split queries than the per-leaf mode.  The tight
    # relations x rounds bound assumes each relation's features share one
    # value kind — true for the all-numeric Favorita schema; a relation
    # mixing string and numeric features adds one query per extra kind.
    rounds = batched["frontier_census"]["batched_rounds"]
    assert 0 < rounds <= _LEAVES
    assert batched["num_feature_queries"] <= (
        batched["num_feature_relations"] * rounds
    )
    assert batched["num_feature_queries"] < per_leaf["num_feature_queries"]
    # Tree-for-tree parity between the modes.
    assert results["rmse_delta"] < 1e-9
    # Incremental labeling (the default): zero full-fact rebuild passes,
    # exactly one root pass, at most two delta updates per split.
    census = batched["frontier_census"]
    assert batched["num_frontier_queries"] == 0
    assert census["label_queries"] == 0
    assert census["root_label_passes"] == 1
    assert 0 < census["delta_label_updates"] <= 2 * (_LEAVES - 1)


def test_fig09_frontier_state(benchmark, figure_report):
    results = benchmark.pedantic(
        fig09_frontier_state_comparison,
        kwargs={"num_features": _FEATURES, "num_leaves": _LEAVES},
        rounds=1, iterations=1,
    )
    rebuild = results["rebuild"]["frontier_census"]
    incremental = results["incremental"]["frontier_census"]
    rows = [
        ["full-fact label passes, rebuild", rebuild["label_queries"]],
        ["full-fact label passes, incremental", incremental["label_queries"]],
        ["root label passes, incremental", incremental["root_label_passes"]],
        ["delta label updates, incremental",
         incremental["delta_label_updates"]],
        ["label bytes, rebuild", rebuild["label_bytes_written"]],
        ["label bytes, incremental", incremental["label_bytes_written"]],
        ["label bytes drop factor",
         round(results["label_bytes_drop_factor"], 1)],
        ["carry-cache hits, incremental", incremental["carry_cache_hits"]],
        ["carry-cache hits, rebuild", rebuild["carry_cache_hits"]],
    ]
    figure_report("fig09_frontier", format_table(
        "Figure 9c — incremental vs rebuilt leaf membership",
        ["metric", "value"], rows,
    ))

    # The paper's work-sharing principle, census-asserted: membership is
    # maintained (rows that move), not recomputed (full-fact copies).
    assert incremental["label_queries"] == 0
    assert results["label_bytes_drop_factor"] >= 5.0
    assert incremental["carry_cache_hits"] > 0
    assert results["rmse_delta"] < 1e-9


def test_fig09_encoding_cache(benchmark, figure_report):
    """The static-work-sharing principle one layer down: join/group-by
    key columns factorize once per training run, not once per query
    (string natural keys — the raw Favorita join-key dtype — are the
    workload where the per-query re-encode hurts most)."""
    results = benchmark.pedantic(
        fig09_encoding_cache_comparison,
        kwargs={"num_features": _FEATURES, "num_leaves": _LEAVES,
                "key_dtype": "str"},
        rounds=1, iterations=1,
    )
    stats = results["on"]["encoding_cache_stats"]
    rows = [
        ["encode passes, cache off", results["off"]["encode_passes"]],
        ["encode passes, cache on", results["on"]["encode_passes"]],
        ["encode-pass drop factor",
         round(results["encode_pass_drop_factor"], 1)],
        ["encode seconds, cache off",
         round(results["encode_seconds_off"], 3)],
        ["encode seconds, cache on",
         round(results["encode_seconds_on"], 3)],
        ["wall speedup factor", round(results["wall_speedup_factor"], 2)],
        ["cache stores / invalidations",
         f"{stats.get('stores', 0)} / {stats.get('invalidations', 0)}"],
    ]
    figure_report("fig09_encoding", format_table(
        "Figure 9d — encoded-key cache (string-keyed Favorita)",
        ["metric", "value"], rows,
    ))

    assert results["encode_pass_drop_factor"] >= 5.0
    assert results["encode_seconds_on"] < results["encode_seconds_off"]
    assert results["rmse_delta"] < 1e-9
