"""Figure 9: query census of JoinBoost's first gradient-boosting iteration.

Paper shape (per-leaf mode): with 8 leaves (15 tree nodes) and 18 features
there are 270 = 15 x 18 best-split queries and one message request per
join edge per node; split queries are fast, message queries (join +
aggregate + materialize) form the slow tail of the latency histogram.

Batched mode (the Section 5 batching optimization): each frontier round
fuses a relation's features into one UNION ALL query with leaf membership
as a CASE grouping column, dropping the split-query count from
O(leaves x features) to O(relations) per round — with tree-for-tree
parity (identical rmse) between the two modes.
"""

from repro.bench.harness import fig09_batching_comparison
from repro.bench.report import format_table

_FEATURES = 18
_LEAVES = 8


def test_fig09_query_census(benchmark, figure_report):
    results = benchmark.pedantic(
        fig09_batching_comparison,
        kwargs={"num_features": _FEATURES, "num_leaves": _LEAVES},
        rounds=1, iterations=1,
    )
    per_leaf = results["per_leaf"]
    batched = results["batched"]

    counts, edges = per_leaf["latency_histogram_ms"]
    rows = [
        ["feature (best-split), per-leaf", per_leaf["num_feature_queries"]],
        ["feature (best-split), batched", batched["num_feature_queries"]],
        ["message (passing), per-leaf", per_leaf["num_message_queries"]],
        ["message (passing), batched", batched["num_message_queries"]],
        ["frontier labeling, batched", batched["num_frontier_queries"]],
        ["expected per-leaf feature queries",
         per_leaf["expected_feature_queries"]],
        ["query drop factor", round(results["query_drop_factor"], 1)],
    ]
    text = format_table("Figure 9a — query counts, 1st iteration",
                        ["query type", "count"], rows)
    text += "\n" + format_table(
        "Figure 9b — query latency histogram (per-leaf)",
        ["bucket >= (ms)", "queries"],
        [[edges[i], counts[i]] for i in range(len(counts))],
    )
    figure_report("fig09", text)

    # 15 nodes x 18 features best-split queries, exactly as the paper counts.
    assert per_leaf["num_feature_queries"] == per_leaf["expected_feature_queries"]
    assert per_leaf["num_feature_queries"] == (2 * _LEAVES - 1) * _FEATURES
    # Messages exist and are far fewer than split queries (caching).
    assert 0 < per_leaf["num_message_queries"] < per_leaf["num_feature_queries"]
    # The slowest message query dominates the slowest split query
    # (join+materialize vs scan of a per-value aggregate).
    assert max(per_leaf["message_ms"]) > max(per_leaf["feature_ms"]) * 0.5

    # Batched mode: at most one fused split query per feature-bearing
    # relation per frontier round (one labeling query marks each round),
    # and never more split queries than the per-leaf mode.  The tight
    # relations x rounds bound assumes each relation's features share one
    # value kind — true for the all-numeric Favorita schema; a relation
    # mixing string and numeric features adds one query per extra kind.
    rounds = batched["num_frontier_queries"]
    assert 0 < rounds <= _LEAVES
    assert batched["num_feature_queries"] <= (
        batched["num_feature_relations"] * rounds
    )
    assert batched["num_feature_queries"] < per_leaf["num_feature_queries"]
    # Tree-for-tree parity between the modes.
    assert results["rmse_delta"] < 1e-9
