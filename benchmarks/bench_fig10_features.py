"""Figure 10: gradient-boosting time vs number of features.

Paper shape: JoinBoost scales roughly linearly in the feature count with a
much lower slope; the single-table baseline degrades faster and runs out
of memory at 50 features (its materialized matrix exceeds the budget —
scaled down here in proportion to the data).
"""

from repro.bench.harness import fig10_feature_scaling
from repro.bench.report import format_table


def test_fig10_feature_scaling(benchmark, figure_report):
    results = benchmark.pedantic(fig10_feature_scaling, rounds=1, iterations=1)
    rows = [
        [count, jb, "OOM" if baseline is None else baseline]
        for count, jb, baseline in results["rows"]
    ]
    figure_report(
        "fig10",
        format_table(
            "Figure 10 — GBM seconds (10 iters) vs #features "
            f"(baseline budget {results['budget_bytes']:,} bytes)",
            ["#features", "joinboost", "lightgbm"],
            rows,
        ),
    )

    counts = [r[0] for r in results["rows"]]
    jb = {r[0]: r[1] for r in results["rows"]}
    baseline = {r[0]: r[2] for r in results["rows"]}
    # The baseline hits the paper's OOM wall at 50 features.
    assert baseline[50] is None
    assert baseline[5] is not None and baseline[25] is not None
    # JoinBoost keeps training at 50 features and scales sub-quadratically.
    assert jb[50] is not None
    assert jb[50] < jb[5] * (50 / 5) * 2.0
