"""Figure 18: inter-query parallelism.

Paper shape: with a dependency-aware scheduler, random forests improve
~35% (whole trees are independent) and gradient boosting ~28% (feature
split queries within a node are independent, messages and iterations are
chains).  CPython's GIL hides in-process wall-clock gains, so this bench
reports the list-scheduling model over *measured* per-query durations —
the deterministic quantity EXPERIMENTS.md documents.
"""

from repro.bench.harness import fig18_parallelism
from repro.bench.report import format_table


def test_fig18_parallelism(benchmark, figure_report):
    results = benchmark.pedantic(fig18_parallelism, rounds=1, iterations=1)
    rows = []
    for workers in sorted(results["rf"]["by_workers"]):
        rows.append([
            workers,
            results["rf"]["by_workers"][workers],
            results["gb"]["by_workers"][workers],
        ])
    text = format_table(
        "Figure 18 — modelled seconds vs workers "
        f"(sequential: rf={results['rf']['sequential']:.3f}s, "
        f"gb={results['gb']['sequential']:.3f}s)",
        ["workers", "rf", "gb (one iteration)"],
        rows,
    )
    rf_gain = 1 - results["rf"]["by_workers"][16] / results["rf"]["sequential"]
    gb_gain = 1 - results["gb"]["by_workers"][16] / results["gb"]["sequential"]
    text += f"\nmodelled improvement at 16 workers: rf {rf_gain:.0%}, gb {gb_gain:.0%}"
    figure_report("fig18", text)

    # RF parallelizes across whole trees: large modelled gain (paper 35%).
    assert rf_gain > 0.3
    # GB's gain is smaller (messages/updates are serial; paper 28%).
    assert 0.0 < gb_gain < rf_gain + 0.35
    # Diminishing returns: most of the gain arrives by 4 workers.
    rf4 = 1 - results["rf"]["by_workers"][4] / results["rf"]["sequential"]
    assert rf4 > 0.5 * rf_gain
