"""Figure 18: inter-query parallelism — measured *and* modelled.

Paper shape: with a dependency-aware scheduler, random forests improve
~35% (whole trees are independent) and gradient boosting ~28% (feature
split queries within a node are independent, messages and iterations are
chains).  Two columns are reported side by side:

* **modelled** — the list-scheduling bound replayed over measured
  per-query durations (the deterministic quantity, independent of host
  core count);
* **measured** — the same one-iteration GBM actually *trained* through
  the :class:`QueryScheduler` worker pool on the sqlite backend
  (per-thread reader connections, GIL released in SQLite's C core),
  with the scheduler's measured per-query overlap.

On single-core CI boxes the measured column flattens to ~1x while the
model still shows the schedule's potential; EXPERIMENTS.md documents the
pairing and `ci_perf_smoke.py` gates the measured speedup on multi-core
hosts.
"""

from repro.bench.harness import fig18_parallelism
from repro.bench.report import format_table


def test_fig18_parallelism(benchmark, figure_report):
    results = benchmark.pedantic(fig18_parallelism, rounds=1, iterations=1)
    measured = results["measured"]
    rows = []
    for workers in sorted(results["rf"]["by_workers"]):
        measured_cell = (
            f"{measured['by_workers'][workers]:.3f}"
            if workers in measured["by_workers"] else "-"
        )
        overlap_cell = (
            f"{measured['overlap_seconds'][workers]:.3f}"
            if workers in measured["overlap_seconds"] else "-"
        )
        rows.append([
            workers,
            results["rf"]["by_workers"][workers],
            results["gb"]["by_workers"][workers],
            measured_cell,
            overlap_cell,
        ])
    text = format_table(
        "Figure 18 — modelled vs measured seconds by workers "
        f"(sequential: rf={results['rf']['sequential']:.3f}s, "
        f"gb={results['gb']['sequential']:.3f}s; measured backend: "
        f"{measured['backend']})",
        ["workers", "rf (model)", "gb (model)", "gb measured s",
         "measured overlap s"],
        rows,
    )
    rf_gain = 1 - results["rf"]["by_workers"][16] / results["rf"]["sequential"]
    gb_gain = 1 - results["gb"]["by_workers"][16] / results["gb"]["sequential"]
    text += f"\nmodelled improvement at 16 workers: rf {rf_gain:.0%}, gb {gb_gain:.0%}"
    figure_report("fig18", text)

    # RF parallelizes across whole trees: large modelled gain (paper 35%).
    assert rf_gain > 0.3
    # GB's gain is smaller (messages/updates are serial; paper 28%).
    assert 0.0 < gb_gain < rf_gain + 0.35
    # Diminishing returns: most of the gain arrives by 4 workers.
    rf4 = 1 - results["rf"]["by_workers"][4] / results["rf"]["sequential"]
    assert rf4 > 0.5 * rf_gain

    # Measured columns exist for every requested worker count and the
    # pool never *costs* catastrophically — even a single-core host must
    # stay within thread-overhead noise of the serial wall.
    assert set(measured["by_workers"]) == {1, 2, 4, 8}
    assert all(v > 0 for v in measured["by_workers"].values())
    assert measured["by_workers"][4] < 1.6 * measured["by_workers"][1]
    # The scheduler engaged: the parallel legs overlapped real query time.
    assert measured["overlap_seconds"][4] > 0.0
