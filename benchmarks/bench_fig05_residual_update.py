"""Figure 5: residual-update time per method per DBMS backend.

Paper shape: Naive is slowest everywhere; CREATE-k grows with k; UPDATE is
prohibitive on the row store but fine on columnar stores; column swap
(DP / D-Swap) is orders of magnitude faster and lands near the LightGBM
raw-array reference line.
"""

from repro.bench.harness import FIG5_BACKENDS, FIG5_METHODS, fig05_residual_updates
from repro.bench.report import format_table

_NUM_ROWS = 1_000_000


def test_fig05_residual_updates(benchmark, figure_report):
    results = benchmark.pedantic(
        fig05_residual_updates,
        kwargs={"num_rows": _NUM_ROWS},
        rounds=1, iterations=1,
    )

    rows = []
    for backend in FIG5_BACKENDS:
        row = [backend]
        for method in FIG5_METHODS:
            value = results[backend][method]
            row.append("n/a" if value is None else value)
        rows.append(row)
    reference = results["lightgbm-ref"]["array-write"]
    rows.append(["lightgbm-ref"] + [reference] * len(FIG5_METHODS))
    figure_report(
        "fig05",
        format_table(
            f"Figure 5 — residual update seconds ({_NUM_ROWS:,} rows)",
            ["backend"] + list(FIG5_METHODS),
            rows,
        ),
    )

    # Shape assertions from the paper (EXPERIMENTS.md discusses the one
    # divergence: our engine's dense-int bucket join makes the naive
    # U-join cheap at microbenchmark scale, so "naive slowest" does not
    # transfer; every other ordering does).
    for backend in ("x-col", "d-disk", "d-mem"):
        # CREATE cost grows with the number of extra columns k.
        assert results[backend]["create-10"] > results[backend]["create-0"]
        # UPDATE-in-place pays WAL/MVCC/compression per statement and
        # loses to CREATE on stock backends (the paper's SET result).
        assert results[backend]["update"] > results[backend]["create-0"]
        # Stock backends cannot swap.
        assert results[backend]["swap"] is None
    # Disk-resident UPDATE (synced WAL) dwarfs in-memory UPDATE.
    assert results["d-disk"]["update"] > results["d-mem"]["update"]
    # Column swap beats UPDATE on its backend and ties/bests CREATE-0.
    swap = results["d-swap"]["swap"]
    assert swap < results["d-swap"]["update"]
    assert swap <= results["d-swap"]["create-0"] * 1.4
    # Swap lands within a small factor of the raw-array reference line.
    reference = results["lightgbm-ref"]["array-write"]
    assert swap < 8 * reference
    # DP (external store) swap sidesteps the disk backends' write path.
    assert results["dp"]["swap"] < results["d-disk"]["update"]
