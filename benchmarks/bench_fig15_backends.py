"""Figure 15: train vs residual-update time per DBMS backend.

Paper shape: columnar backends train fastest; the row store pays on
scans; gradient boosting's update cost dominates on stock backends and
collapses under column swap (DP / D-Swap), with X-Swap* showing what the
commercial store would gain from the same patch.

The "sqlite" row is not a storage preset of the embedded engine but a
real second DBMS (stdlib sqlite3 via the connector layer) running the
same lifted SQL — the paper's portability claim, measured.
"""

from repro.bench.harness import FIG15_BACKENDS, fig15_backends
from repro.bench.report import format_table


def test_fig15_backends(benchmark, figure_report):
    results = benchmark.pedantic(
        fig15_backends, kwargs={"num_fact_rows": 150_000}, rounds=1, iterations=1
    )
    rows = [
        [backend, train, update, train + update]
        for backend, (train, update) in results.items()
    ]
    figure_report(
        "fig15",
        format_table(
            "Figure 15 — one GBM iteration: train vs update seconds",
            ["backend", "train", "update", "total"],
            rows,
        ),
    )

    def orderings_hold(measured):
        totals = {b: t + u for b, (t, u) in measured.items()}
        updates = {b: u for b, (_, u) in measured.items()}
        trains = {b: t for b, (t, _) in measured.items()}
        return (
            # The row store is the slowest trainer (strided scans).
            trains["x-row"] > trains["d-mem"]
            # Column swap turns updates into near-noise vs synced-WAL.
            and updates["d-swap"] < updates["d-disk"]
            and updates["dp"] < updates["d-disk"]
            # Simulated X-Swap* improves on stock X-col's update path.
            and updates["x-swap*"] < updates["x-col"] * 1.05
            # Best overall backend is swap-capable (paper: D-Swap).
            and min(totals, key=totals.get) in ("d-swap", "dp", "d-mem")
        )

    # These are tens-of-milliseconds measurements, so a single round can
    # be perturbed by scheduler noise when the whole figure suite shares
    # one process: re-measure everything (up to twice) before declaring
    # an ordering inversion.
    for _ in range(2):
        if orderings_hold(results):
            break
        results = fig15_backends(num_fact_rows=150_000)
    assert orderings_hold(results)
