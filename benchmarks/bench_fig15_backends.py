"""Figure 15: train vs residual-update time per DBMS backend.

Paper shape: columnar backends train fastest; the row store pays on
scans; gradient boosting's update cost dominates on stock backends and
collapses under column swap (DP / D-Swap), with X-Swap* showing what the
commercial store would gain from the same patch.

The "sqlite" row is not a storage preset of the embedded engine but a
real second DBMS (stdlib sqlite3 via the connector layer) running the
same lifted SQL — the paper's portability claim, measured.
"""

from repro.bench.harness import FIG15_BACKENDS, fig15_backends
from repro.bench.report import format_table


def test_fig15_backends(benchmark, figure_report):
    results = benchmark.pedantic(
        fig15_backends, kwargs={"num_fact_rows": 150_000}, rounds=1, iterations=1
    )
    rows = [
        [backend, train, update, train + update]
        for backend, (train, update) in results.items()
    ]
    figure_report(
        "fig15",
        format_table(
            "Figure 15 — one GBM iteration: train vs update seconds",
            ["backend", "train", "update", "total"],
            rows,
        ),
    )

    totals = {b: t + u for b, (t, u) in results.items()}
    updates = {b: u for b, (_, u) in results.items()}
    # The row store is the slowest trainer (strided scans).
    trains = {b: t for b, (t, _) in results.items()}
    assert trains["x-row"] > trains["d-mem"]
    # Column swap turns updates into near-noise vs the synced-WAL backends.
    assert updates["d-swap"] < updates["d-disk"]
    assert updates["dp"] < updates["d-disk"]
    # The simulated X-Swap* improves on stock X-col's update path.
    assert updates["x-swap*"] < updates["x-col"] * 1.05
    # Best overall backend is one of the swap-capable ones (paper: D-Swap).
    best = min(totals, key=totals.get)
    assert best in ("d-swap", "dp", "d-mem")
