"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  Canonical metadata lives in pyproject.toml (PEP
621); this file mirrors only the fields the legacy path needs and must
be kept in sync with it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="JoinBoost reproduction: grow trees over normalized data using only SQL",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={"duckdb": ["duckdb>=0.9"], "test": ["pytest>=7"]},
)
