"""Predicate rendering, negation, hashing and vectorized evaluation."""

import numpy as np
import pytest

from repro.core.tree import _eval_predicate
from repro.exceptions import TrainingError
from repro.factorize.predicates import (
    Predicate,
    add_predicate,
    predicate_state,
    render_conjunction,
)


class TestRendering:
    def test_numeric(self):
        assert Predicate("age", "<=", 30).render("t") == "t.age <= 30"

    def test_string_escaped(self):
        rendered = Predicate("name", "=", "o'brien").render()
        assert rendered == "name = 'o''brien'"

    def test_in_list(self):
        rendered = Predicate("k", "IN", (1, 2)).render("t")
        assert rendered == "t.k IN (1, 2)"

    def test_include_null(self):
        rendered = Predicate("age", ">", 30, include_null=True).render("t")
        assert rendered == "(t.age > 30 OR t.age IS NULL)"

    def test_is_null(self):
        assert Predicate("age", "IS NULL").render() == "age IS NULL"

    def test_unknown_op(self):
        with pytest.raises(TrainingError):
            Predicate("a", "~~", 1)

    def test_in_requires_tuple(self):
        with pytest.raises(TrainingError):
            Predicate("a", "IN", 5)


class TestNegation:
    def test_le_flips_to_gt_with_null_routing(self):
        negated = Predicate("a", "<=", 3).negate()
        assert negated.op == ">"
        assert negated.include_null  # NULLs route right by default

    def test_double_negation_restores(self):
        pred = Predicate("a", "<=", 3)
        assert pred.negate().negate() == pred

    def test_in_flips(self):
        assert Predicate("a", "IN", (1,)).negate().op == "NOT IN"

    def test_is_null_flips(self):
        assert Predicate("a", "IS NULL").negate().op == "IS NOT NULL"


class TestMaps:
    def test_add_predicate_is_functional(self):
        base = {}
        updated = add_predicate(base, "r", Predicate("a", "<=", 1))
        assert base == {}
        assert len(updated["r"]) == 1

    def test_predicate_state_restricted_to_side(self):
        preds = add_predicate({}, "r", Predicate("a", "<=", 1))
        preds = add_predicate(preds, "s", Predicate("b", ">", 2))
        state = predicate_state(preds, ["r"])
        assert len(state) == 1

    def test_render_conjunction(self):
        preds = (Predicate("a", "<=", 1), Predicate("b", ">", 2))
        assert render_conjunction(preds, "t") == "t.a <= 1 AND t.b > 2"
        assert render_conjunction(()) is None


class TestVectorizedEvaluation:
    def test_le_with_nulls(self):
        values = np.array([1.0, np.nan, 5.0])
        mask = _eval_predicate(Predicate("x", "<=", 3), values)
        assert list(mask) == [True, False, False]

    def test_include_null_routes_nan(self):
        values = np.array([1.0, np.nan])
        mask = _eval_predicate(Predicate("x", ">", 3, include_null=True), values)
        assert list(mask) == [False, True]

    def test_in_set(self):
        mask = _eval_predicate(Predicate("x", "IN", (1, 3)), np.array([1.0, 2.0, 3.0]))
        assert list(mask) == [True, False, True]

    def test_split_partition_is_exact(self):
        """σ and ¬σ partition every row, including NULLs."""
        values = np.array([1.0, 2.0, np.nan, 4.0])
        pred = Predicate("x", "<=", 2)
        left = _eval_predicate(pred, values)
        right = _eval_predicate(pred.negate(), values)
        assert np.array_equal(left | right, np.ones(4, dtype=bool))
        assert not (left & right).any()
