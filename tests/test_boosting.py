"""Gradient boosting: convergence, losses, galaxy CPT, multiclass."""

import numpy as np
import pytest

import repro
from repro.core.predict import feature_frame, rmse_on_join
from repro.exceptions import TrainingError
from repro.joingraph.clusters import cluster_graph
from repro.semiring.losses import get_loss
from repro.storage.column import Column


class TestSnowflakeBoosting:
    def test_rmse_decreases(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 20, "num_leaves": 8, "learning_rate": 0.3},
            evaluate_every=5,
        )
        rmses = [r.rmse for r in model.history if r.rmse is not None]
        assert len(rmses) == 4
        assert rmses[-1] < rmses[0]

    def test_beats_constant_predictor(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 25, "num_leaves": 8,
                        "learning_rate": 0.3},
        )
        y = db.table("fact").column("target").values
        assert rmse_on_join(db, graph, model) < 0.5 * y.std()

    def test_learning_rate_zero_point_one_converges_slower(self, small_star):
        db, graph = small_star
        fast = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 5, "num_leaves": 4,
                        "learning_rate": 0.5},
        )
        slow = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 5, "num_leaves": 4,
                        "learning_rate": 0.05},
        )
        assert rmse_on_join(db, graph, fast) < rmse_on_join(db, graph, slow)

    def test_reg_lambda_shrinks_leaves(self, small_star):
        db, graph = small_star
        plain = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 1, "num_leaves": 4},
        )
        regularized = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 1, "num_leaves": 4,
                        "reg_lambda": 1000.0},
        )
        plain_leaf = max(abs(l.prediction) for l in plain.trees[0].leaves())
        reg_leaf = max(abs(l.prediction) for l in regularized.trees[0].leaves())
        assert reg_leaf < plain_leaf

    @pytest.mark.parametrize(
        "objective", ["l1", "huber", "fair", "quantile", "mape"]
    )
    def test_general_losses_train(self, tiny_star, objective):
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": objective, "num_iterations": 3, "num_leaves": 4,
             "learning_rate": 0.3},
        )
        assert len(model.trees) == 3
        assert np.isfinite(rmse_on_join(db, graph, model))

    def test_poisson_on_positive_target(self):
        from repro.datasets import star_schema

        db, graph = star_schema(num_fact_rows=400, num_dims=1, seed=9)
        table = db.table("fact")
        y = np.abs(table.column("target").values) + 1.0
        table.set_column(Column("target", y))
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": "poisson", "num_iterations": 3, "num_leaves": 4,
             "learning_rate": 0.2},
        )
        frame = feature_frame(db, graph)
        assert (model.predict_arrays(frame) > 0).all()  # exp link

    def test_history_records_timings(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4},
        )
        assert len(model.history) == 2
        assert all(r.train_seconds >= 0 for r in model.history)
        assert all(r.update_seconds >= 0 for r in model.history)

    def test_temp_tables_cleaned(self, tiny_star):
        db, graph = tiny_star
        repro.train_gradient_boosting(db, graph, {"num_iterations": 2,
                                                  "num_leaves": 4})
        assert db.catalog.temp_names() == []

    def test_colsample(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4,
                        "feature_fraction": 0.5, "seed": 3},
        )
        assert len(model.trees) == 4


class TestGalaxyBoosting:
    def test_galaxy_trains_with_cpt(self, small_imdb):
        db, graph = small_imdb
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4,
                        "learning_rate": 0.5},
        )
        assert len(model.trees) == 4
        assert db.catalog.temp_names() == []

    def test_galaxy_rejects_non_rmse(self, small_imdb):
        db, graph = small_imdb
        with pytest.raises(TrainingError):
            repro.train_gradient_boosting(
                db, graph, {"objective": "l1", "num_iterations": 2},
            )

    def test_galaxy_residuals_shrink(self, small_imdb):
        """Mean |leaf value| of later trees shrinks as residuals are
        absorbed — boosting is actually learning over the galaxy join."""
        db, graph = small_imdb
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 6, "num_leaves": 4,
                        "learning_rate": 0.8},
        )

        def leaf_scale(tree):
            return np.mean([abs(l.prediction) for l in tree.leaves()])

        first, last = leaf_scale(model.trees[0]), leaf_scale(model.trees[-1])
        assert last < first

    def test_explicit_clusters_accepted(self, small_imdb):
        db, graph = small_imdb
        clusters = cluster_graph(graph)
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4},
            clusters=clusters,
        )
        assert len(model.trees) == 2


class TestMulticlass:
    @pytest.fixture
    def class_data(self):
        from repro.datasets import star_schema

        db, graph = star_schema(num_fact_rows=900, num_dims=2, seed=3)
        table = db.table("fact")
        y = table.column("target").values
        labels = np.digitize(y, np.quantile(y, [0.33, 0.66])).astype(np.int64)
        table.set_column(Column("target", labels))
        return db, graph, labels

    def test_accuracy_beats_majority(self, class_data):
        db, graph, labels = class_data
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": "multiclass", "num_class": 3, "num_iterations": 3,
             "num_leaves": 4, "learning_rate": 0.3},
        )
        frame = feature_frame(db, graph)
        accuracy = (model.predict_arrays(frame) == labels).mean()
        majority = max(np.bincount(labels)) / len(labels)
        assert accuracy > majority + 0.1

    def test_probabilities_normalized(self, class_data):
        db, graph, labels = class_data
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": "multiclass", "num_class": 3, "num_iterations": 2,
             "num_leaves": 4},
        )
        frame = feature_frame(db, graph)
        probs = model.predict_proba(frame)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.shape == (len(labels), 3)

    def test_one_chain_per_class(self, class_data):
        db, graph, labels = class_data
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": "multiclass", "num_class": 3, "num_iterations": 2,
             "num_leaves": 4},
        )
        assert model.num_classes == 3
        assert all(len(chain) == 2 for chain in model.trees_per_class)


class TestQualityParityWithLightGBMStandIn:
    def test_final_rmse_close(self, small_favorita):
        """Section 6.1: final model error is nearly identical."""
        from repro.baselines.export import load_feature_matrix
        from repro.baselines.histgbm import HistGradientBoosting

        db, graph = small_favorita
        iterations, leaves, lr = 15, 8, 0.3
        ours = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": iterations, "num_leaves": leaves,
             "learning_rate": lr, "min_data_in_leaf": 3},
        )
        X, y, _ = load_feature_matrix(db, graph)
        theirs = HistGradientBoosting(
            num_iterations=iterations, num_leaves=leaves, learning_rate=lr,
            max_bin=1000, min_child_samples=3,
        ).fit(X, y)
        ours_rmse = rmse_on_join(db, graph, ours)
        theirs_rmse = float(np.sqrt(np.mean((theirs.predict(X) - y) ** 2)))
        assert ours_rmse == pytest.approx(theirs_rmse, rel=0.15)
