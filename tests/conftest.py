"""Shared fixtures: small databases, join graphs, the backend matrix."""

import importlib.util
import os

import numpy as np
import pytest

from repro.engine.database import Database
from repro.datasets import favorita, imdb, star_schema

#: is the optional duckdb package importable on this host?
DUCKDB_INSTALLED = importlib.util.find_spec("duckdb") is not None

#: mark for tests that need a real duckdb (clean skip when absent)
requires_duckdb = pytest.mark.skipif(
    not DUCKDB_INSTALLED, reason="optional 'duckdb' package not installed"
)

#: an extra backend column forced into every parametrized matrix — the
#: CI backend-duckdb leg sets JOINBOOST_BACKEND=duckdb so parity suites
#: fail loudly (not skip) if the forced backend is broken or missing
FORCED_BACKEND = os.environ.get("JOINBOOST_BACKEND", "").strip().lower()


def backend_matrix(*base):
    """Backend ids for connector-parity parametrization.

    The given base names run unconditionally; a ``duckdb`` column rides
    along, skipping cleanly when the optional package is absent —
    unless ``JOINBOOST_BACKEND=duckdb`` forces it (the CI leg), in
    which case a missing package is a hard failure.
    """
    params = [pytest.param(name) for name in base]
    if "duckdb" not in base:
        if FORCED_BACKEND == "duckdb":
            params.append(pytest.param("duckdb"))
        else:
            params.append(pytest.param("duckdb", marks=requires_duckdb))
    if FORCED_BACKEND and FORCED_BACKEND not in base + ("duckdb",):
        params.append(pytest.param(FORCED_BACKEND))
    return params


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def paper_example_db():
    """The paper's Figure 1 relations R, S, T (target B on R)."""
    database = Database()
    database.create_table("r", {"a": [1, 1, 2, 2], "b": [2.0, 3.0, 1.0, 2.0]})
    database.create_table("s", {"a": [1, 2, 2], "cc": [2, 1, 3]})
    database.create_table("t", {"a": [1, 1, 2], "d": [1, 2, 2]})
    return database


@pytest.fixture
def paper_example_graph(paper_example_db):
    from repro.joingraph.graph import JoinGraph

    graph = JoinGraph(paper_example_db)
    graph.add_relation("r", y="b")
    graph.add_relation("s", features=["cc"])
    graph.add_relation("t", features=["d"])
    graph.add_edge("r", "s", ["a"])
    graph.add_edge("s", "t", ["a"])
    return graph


@pytest.fixture
def small_star():
    """A 3-dimension star schema with 2000 fact rows."""
    return star_schema(num_fact_rows=2000, num_dims=3, seed=1)


@pytest.fixture
def tiny_star():
    return star_schema(num_fact_rows=300, num_dims=2, dim_size=10, seed=4)


@pytest.fixture
def small_favorita():
    return favorita(num_fact_rows=5_000, num_extra_features=2, seed=5)


@pytest.fixture
def small_imdb():
    return imdb(rows_per_fact=1_500, num_movies=80, num_persons=120, seed=6)


def materialized_frame(db, graph):
    """Feature matrix + y of the materialized join (test helper)."""
    from repro.baselines.export import load_feature_matrix

    return load_feature_matrix(db, graph)
