"""Shared fixtures: small databases and join graphs."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.datasets import favorita, imdb, star_schema


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def paper_example_db():
    """The paper's Figure 1 relations R, S, T (target B on R)."""
    database = Database()
    database.create_table("r", {"a": [1, 1, 2, 2], "b": [2.0, 3.0, 1.0, 2.0]})
    database.create_table("s", {"a": [1, 2, 2], "cc": [2, 1, 3]})
    database.create_table("t", {"a": [1, 1, 2], "d": [1, 2, 2]})
    return database


@pytest.fixture
def paper_example_graph(paper_example_db):
    from repro.joingraph.graph import JoinGraph

    graph = JoinGraph(paper_example_db)
    graph.add_relation("r", y="b")
    graph.add_relation("s", features=["cc"])
    graph.add_relation("t", features=["d"])
    graph.add_edge("r", "s", ["a"])
    graph.add_edge("s", "t", ["a"])
    return graph


@pytest.fixture
def small_star():
    """A 3-dimension star schema with 2000 fact rows."""
    return star_schema(num_fact_rows=2000, num_dims=3, seed=1)


@pytest.fixture
def tiny_star():
    return star_schema(num_fact_rows=300, num_dims=2, dim_size=10, seed=4)


@pytest.fixture
def small_favorita():
    return favorita(num_fact_rows=5_000, num_extra_features=2, seed=5)


@pytest.fixture
def small_imdb():
    return imdb(rows_per_fact=1_500, num_movies=80, num_persons=120, seed=6)


def materialized_frame(db, graph):
    """Feature matrix + y of the materialized join (test helper)."""
    from repro.baselines.export import load_feature_matrix

    return load_feature_matrix(db, graph)
