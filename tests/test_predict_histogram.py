"""Prediction over joins, and histogram/cuboid training (Appendix D.3)."""

import numpy as np
import pytest

import repro
from repro.core.histogram import (
    bin_column,
    bin_graph,
    build_cuboid,
    quantile_edges,
    train_boosting_on_cuboid,
)
from repro.core.predict import feature_frame, predict_join, rmse_on_join
from repro.exceptions import TrainingError
from repro.semiring.gradient import GradientSemiRing


class TestFeatureFrame:
    def test_alignment_with_fact(self, small_star):
        db, graph = small_star
        frame = feature_frame(db, graph)
        n = db.table("fact").num_rows()
        assert all(len(v) == n for v in frame.values())
        assert "target" in frame

    def test_dimension_values_correct(self, small_star):
        db, graph = small_star
        frame = feature_frame(db, graph)
        k0 = db.table("fact").column("k0").values
        dim0 = db.table("dim0").column("dfeat0").values
        assert np.allclose(frame["dfeat0"], dim0[k0])

    def test_two_hop_chain(self, small_favorita):
        db, graph = small_favorita
        frame = feature_frame(db, graph)
        date_id = db.table("sales").column("date_id").values
        oil = db.table("oil").column("f_oil").values
        assert np.allclose(frame["f_oil"], oil[date_id])

    def test_missing_key_yields_nan(self):
        from repro.engine.database import Database
        from repro.joingraph.graph import JoinGraph

        db = Database()
        db.create_table("fact", {"k": [0, 7], "yv": [1.0, 2.0]})
        db.create_table("dim", {"k": [0], "feat": [5.0]})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["feat"])
        graph.add_edge("fact", "dim", ["k"])
        frame = feature_frame(db, graph)
        assert np.isnan(frame["feat"][1])

    def test_predict_join_uses_required_features_only(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4},
        )
        scores = predict_join(db, graph, model)
        assert len(scores) == db.table("fact").num_rows()


class TestBinning:
    def test_quantile_edges_monotone(self):
        rng = np.random.default_rng(0)
        edges = quantile_edges(rng.normal(size=500), 16)
        assert np.all(np.diff(edges) > 0)

    def test_bin_column_maps_to_edges(self):
        edges = np.array([1.0, 2.0, 3.0])
        out = bin_column(np.array([0.5, 1.5, 9.0]), edges)
        assert list(out) == [1.0, 2.0, 3.0]

    def test_bin_column_preserves_nan(self):
        out = bin_column(np.array([np.nan, 1.0]), np.array([1.0]))
        assert np.isnan(out[0])

    def test_all_null_column_rejected(self):
        with pytest.raises(TrainingError):
            quantile_edges(np.array([np.nan, np.nan]), 4)

    def test_bin_graph_reduces_cardinality(self, small_star):
        db, graph = small_star
        binned = bin_graph(db, graph, max_bin=4)
        rel = next(iter(binned.graph.relations.values()))
        for name, info in binned.graph.relations.items():
            for feature in info.features:
                distinct = len(
                    np.unique(db.table(name).column(feature).values)
                )
                assert distinct <= 4 or feature not in info.features
        binned.cleanup(db)


class TestCuboid:
    def test_cuboid_smaller_than_fact(self, small_star):
        db, graph = small_star
        binned = bin_graph(db, graph, max_bin=3)
        ring = GradientSemiRing()
        cuboid, features = build_cuboid(
            db, binned.graph, ring.lift_pair_sql("1", "(0.0 - t.target)"),
            list(ring.components),
        )
        assert db.table(cuboid).num_rows() < db.table("fact").num_rows() / 5
        db.drop_table(cuboid)
        binned.cleanup(db)

    def test_cuboid_preserves_totals(self, small_star):
        db, graph = small_star
        ring = GradientSemiRing()
        cuboid, _ = build_cuboid(
            db, graph, ring.lift_pair_sql("1", "t.target"), list(ring.components)
        )
        total_h = db.execute(f"SELECT SUM(h) AS v FROM {cuboid}").scalar()
        total_g = db.execute(f"SELECT SUM(g) AS v FROM {cuboid}").scalar()
        assert total_h == db.table("fact").num_rows()
        assert total_g == pytest.approx(
            float(db.table("fact").column("target").values.sum())
        )
        db.drop_table(cuboid)

    def test_cuboid_boosting_converges(self, small_star):
        db, graph = small_star
        model = train_boosting_on_cuboid(
            db, graph,
            {"num_iterations": 10, "num_leaves": 6, "learning_rate": 0.3,
             "max_bin": 8},
        )
        y = db.table("fact").column("target").values
        assert rmse_on_join(db, graph, model) < 0.6 * y.std()
        assert db.catalog.temp_names() == []

    def test_cuboid_requires_rmse(self, small_star):
        db, graph = small_star
        with pytest.raises(TrainingError):
            train_boosting_on_cuboid(
                db, graph, {"objective": "l1", "num_iterations": 1}
            )

    def test_more_bins_better_fit(self, small_star):
        db, graph = small_star
        coarse = train_boosting_on_cuboid(
            db, graph, {"num_iterations": 8, "num_leaves": 6,
                        "learning_rate": 0.3, "max_bin": 2},
        )
        fine = train_boosting_on_cuboid(
            db, graph, {"num_iterations": 8, "num_leaves": 6,
                        "learning_rate": 0.3, "max_bin": 16},
        )
        assert rmse_on_join(db, graph, fine) <= rmse_on_join(db, graph, coarse)
