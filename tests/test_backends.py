"""The connector layer: dialect translation, sqlite3 execution, parity.

The load-bearing claim (ISSUE 1 acceptance): the same join graph trained
through ``connect(backend="sqlite")`` — stdlib sqlite3 running the
Factorizer's lifted SQL through the dialect shim — grows *the same
model* as the embedded engine, leaf for leaf, and within 1e-9 rmse.
"""

import numpy as np
import pytest

import repro
from repro.backends import (
    BackendError,
    Capabilities,
    Connector,
    DuckDBConnector,
    DuckDBDialect,
    EmbeddedConnector,
    SQLiteConnector,
    SQLiteDialect,
    backend_names,
    get_backend,
    split_statements,
)
from repro.exceptions import CatalogError, ExecutionError
from repro.joingraph.graph import JoinGraph

from conftest import backend_matrix


# ---------------------------------------------------------------------------
# Dialect translation
# ---------------------------------------------------------------------------
class TestSQLiteDialect:
    def setup_method(self):
        self.dialect = SQLiteDialect()

    def test_sum_becomes_total(self):
        assert self.dialect.translate("SELECT SUM(c) FROM t") == \
            "SELECT TOTAL(c) FROM t"

    def test_sum_case_insensitive_and_nested(self):
        out = self.dialect.translate("SELECT sum(Sum(a) + 1) FROM t")
        assert out == "SELECT TOTAL(TOTAL(a) + 1) FROM t"

    def test_sum_in_window_position(self):
        out = self.dialect.translate(
            "SELECT SUM(c) OVER (ORDER BY f) AS cw FROM t"
        )
        assert out == "SELECT TOTAL(c) OVER (ORDER BY f) AS cw FROM t"

    def test_variance_rewrites_to_sum_sumsq(self):
        out = self.dialect.translate("SELECT VARIANCE(x) FROM t")
        assert "TOTAL((x) * (x))" in out
        assert "COUNT(x)" in out
        assert "VARIANCE" not in out

    def test_stddev_rewrites_via_power(self):
        out = self.dialect.translate("SELECT STDDEV(y + 1) FROM t")
        assert out.startswith("SELECT (POWER(")
        assert "TOTAL((y + 1) * (y + 1))" in out

    def test_string_literals_are_preserved(self):
        sql = "SELECT 'SUM(x) is TRUE; really' AS s, SUM(v) FROM t"
        out = self.dialect.translate(sql)
        assert "'SUM(x) is TRUE; really'" in out
        assert out.endswith("TOTAL(v) FROM t")

    def test_true_false_literals(self):
        out = self.dialect.translate("SELECT * FROM t WHERE TRUE AND b = FALSE")
        assert out == "SELECT * FROM t WHERE 1 AND b = 0"

    def test_identifiers_containing_keywords_untouched(self):
        out = self.dialect.translate("SELECT true_flag, summary FROM t")
        assert out == "SELECT true_flag, summary FROM t"

    def test_escaped_quotes_inside_literal(self):
        out = self.dialect.translate("SELECT 'it''s TRUE' AS s FROM t")
        assert "'it''s TRUE'" in out

    def test_split_statements_respects_strings(self):
        parts = split_statements("SELECT 'a;b' AS s; DROP TABLE t;")
        assert parts == ["SELECT 'a;b' AS s", "DROP TABLE t"]

    def test_classify(self):
        assert SQLiteDialect.classify("SELECT 1")[0] == "Select"
        assert SQLiteDialect.classify("  create table x as select 1") == \
            ("CreateTableAs", False)
        assert SQLiteDialect.classify("UPDATE t SET a = 1")[0] == "Update"
        assert SQLiteDialect.classify("DROP TABLE t")[0] == "DropTable"

    def test_scientific_notation_survives(self):
        sql = "SELECT a / 1e-09 FROM t WHERE b >= 2.5e10"
        assert self.dialect.translate(sql) == sql

    def test_double_quoted_identifiers_untouched(self):
        sql = 'SELECT "true", "sum"(x) FROM t WHERE "false" = 1'
        assert self.dialect.translate(sql) == sql


class TestDuckDBDialect:
    """The duckdb translator is pure Python — it runs with or without
    the optional package installed."""

    def setup_method(self):
        self.dialect = DuckDBDialect()

    def test_sum_passes_through(self):
        """DuckDB divides integer aggregates as REAL and returns NULL on
        empty input exactly like the emitted SQL expects — no TOTAL
        rewrite wanted."""
        sql = "SELECT SUM(c) OVER (ORDER BY f) AS cw, SUM(s) FROM t"
        assert self.dialect.translate(sql) == sql

    def test_variance_renames_to_population_spelling(self):
        out = self.dialect.translate("SELECT VARIANCE(x), VAR(y + 1) FROM t")
        assert out == "SELECT var_pop(x), var_pop(y + 1) FROM t"

    def test_stddev_renames_to_population_spelling(self):
        out = self.dialect.translate("SELECT STDDEV(x) FROM t")
        assert out == "SELECT stddev_pop(x) FROM t"

    def test_true_false_left_alone(self):
        sql = "SELECT * FROM t WHERE TRUE AND b = FALSE"
        assert self.dialect.translate(sql) == sql

    def test_string_literals_are_preserved(self):
        sql = "SELECT 'VARIANCE(x); really' AS s, VARIANCE(v) FROM t"
        out = self.dialect.translate(sql)
        assert "'VARIANCE(x); really'" in out
        assert out.endswith("var_pop(v) FROM t")

    def test_identifiers_containing_keywords_untouched(self):
        sql = "SELECT variance_estimate, stddev_col FROM t"
        assert self.dialect.translate(sql) == sql

    def test_classify_is_shared(self):
        assert DuckDBDialect.classify("SELECT 1") == ("Select", True)
        assert DuckDBDialect.classify("UPDATE t SET a = 1") == ("Update", False)
        assert DuckDBDialect.classify("  create table x as select 1") == \
            ("CreateTableAs", False)


# ---------------------------------------------------------------------------
# SQLiteConnector mechanics
# ---------------------------------------------------------------------------
class TestSQLiteConnector:
    def test_create_execute_roundtrip(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"a": [1, 2, 3], "b": [1.5, 2.5, 3.5]})
        result = conn.execute("SELECT a, b FROM t WHERE a <= 2")
        assert result.num_rows == 2
        np.testing.assert_array_equal(result["a"], [1, 2])

    def test_integer_division_matches_embedded_semantics(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"c": [1, 1, 1], "s": [1, 2, 4]})
        row = conn.execute("SELECT SUM(s) / SUM(c) AS mean FROM t").first_row()
        assert row["mean"] == pytest.approx(7 / 3)

    def test_nan_stored_as_null_and_read_back_as_nan(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"x": np.array([1.0, np.nan, 3.0])})
        assert conn.execute(
            "SELECT COUNT(*) AS n FROM t WHERE x IS NULL"
        ).first_row()["n"] == 1
        col = conn.table("t").column("x")
        assert np.isnan(col.values[1])
        assert col.is_null()[1]

    def test_table_view_interface(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"k": np.arange(4), "v": np.arange(4) * 0.5})
        view = conn.table("t")
        assert view.column_names() == ["k", "v"]
        assert view.num_rows() == 4
        assert "k" in view and "missing" not in view
        assert view.column("v").ctype.name == "FLOAT"

    def test_create_table_as_select_and_rename(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"a": [1, 2, 3]})
        conn.execute("CREATE TABLE u AS SELECT a * 2 AS a2 FROM t")
        conn.rename_table("u", "w")
        assert conn.has_table("w") and not conn.has_table("u")
        np.testing.assert_array_equal(conn.table("w").column("a2").values,
                                      [2, 4, 6])

    def test_rename_to_existing_raises(self):
        conn = SQLiteConnector()
        conn.create_table("a", {"x": [1]})
        conn.create_table("b", {"x": [1]})
        with pytest.raises(CatalogError):
            conn.rename_table("a", "b")
        with pytest.raises(CatalogError):
            conn.rename_table("missing", "c")

    def test_ragged_create_table_raises(self):
        """Unequal column lengths fail loudly, matching the embedded
        engine, instead of zip() silently truncating."""
        from repro.exceptions import StorageError

        conn = SQLiteConnector()
        with pytest.raises(StorageError, match="unequal lengths"):
            conn.create_table("t", {"a": [1, 2, 3], "b": [1, 2]})

    def test_duplicate_create_and_missing_drop_raise(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"x": [1]})
        with pytest.raises(CatalogError):
            conn.create_table("t", {"x": [2]})
        conn.create_table("t", {"x": [5]}, replace=True)
        with pytest.raises(CatalogError):
            conn.drop_table("nope")
        conn.drop_table("nope", if_exists=True)

    def test_temp_namespace_cleanup(self):
        conn = SQLiteConnector()
        keep = conn.temp_name("keepme")
        doomed = conn.temp_name("msg")
        conn.create_table(keep, {"x": [1]})
        conn.create_table(doomed, {"x": [1]})
        conn.create_table("user_data", {"x": [1]})
        assert conn.cleanup_temp(keep=[keep]) == 1
        assert conn.has_table(keep) and conn.has_table("user_data")
        assert not conn.has_table(doomed)

    def test_replace_column_preserves_row_order(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"k": np.arange(5), "v": np.zeros(5)})
        conn.replace_column("t", "v", np.arange(5) * 1.5)
        np.testing.assert_allclose(conn.table("t").column("v").values,
                                   np.arange(5) * 1.5)

    def test_replace_column_length_mismatch_raises(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"v": np.zeros(3)})
        with pytest.raises(ExecutionError):
            conn.replace_column("t", "v", np.zeros(2))

    def test_replace_column_rejects_unknown_strategy(self):
        """Typo'd strategies fail identically across backends."""
        from repro.exceptions import StorageError

        conn = SQLiteConnector()
        conn.create_table("t", {"v": np.zeros(3)})
        with pytest.raises(StorageError, match="unknown update strategy"):
            conn.replace_column("t", "v", np.ones(3), strategy="teleport")

    def test_registered_functions(self):
        conn = SQLiteConnector()
        row = conn.execute(
            "SELECT GREATEST(1, 5, 3) AS g, LEAST(2, 7) AS l, "
            "SIGN(-4.0) AS s, EXP(0.0) AS e"
        ).first_row()
        assert (row["g"], row["l"], row["s"], row["e"]) == (5, 2, -1, 1.0)

    def test_median_aggregate(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"x": [1.0, 9.0, 2.0]})
        assert conn.execute(
            "SELECT MEDIAN(x) AS m FROM t"
        ).first_row()["m"] == 2.0

    def test_profiles_record_kind_and_tag(self):
        conn = SQLiteConnector()
        conn.create_table("t", {"x": [1.0]})
        conn.reset_profiles()
        conn.execute("SELECT x FROM t", tag="feature")
        conn.execute("CREATE TABLE u AS SELECT x FROM t", tag="message")
        kinds = [(p.kind, p.tag) for p in conn.profiles]
        assert kinds == [("Select", "feature"), ("CreateTableAs", "message")]
        assert "feature" in conn.profiles_by_tag()

    def test_execution_error_wraps_sqlite_errors(self):
        conn = SQLiteConnector()
        with pytest.raises(ExecutionError):
            conn.execute("SELECT * FROM missing_table")


# ---------------------------------------------------------------------------
# Registry / connect()
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_backend_names_cover_the_matrix(self):
        names = backend_names()
        for expected in ("embedded", "plain", "sqlite", "duckdb", "d-swap"):
            assert expected in names

    def test_connect_routes_presets_to_embedded(self):
        # .unwrapped sees through the chaos/retry proxies connect() may
        # stack (e.g. under a JOINBOOST_CHAOS CI leg)
        conn = repro.connect(backend="d-swap")
        assert isinstance(conn.unwrapped, EmbeddedConnector)
        assert conn.capabilities.column_swap
        assert not repro.connect(backend="d-mem").capabilities.column_swap

    def test_connect_sqlite(self):
        conn = repro.connect(backend="sqlite", t={"a": [1, 2]})
        assert isinstance(conn.unwrapped, SQLiteConnector)
        assert conn.dialect == "sqlite"
        assert conn.has_table("t")

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(BackendError, match="available"):
            get_backend("oracle9i")

    def test_duckdb_guides_install_when_absent(self):
        try:
            import duckdb  # noqa: F401
            pytest.skip("duckdb installed; missing-package path not reachable")
        except ImportError:
            pass
        with pytest.raises(BackendError, match="pip install"):
            DuckDBConnector()

    def test_embedded_connector_proxies_engine_internals(self):
        conn = repro.connect(backend="plain", t={"a": [1.0, 2.0]})
        # Storage benches reach through to the engine's catalog.
        assert conn.catalog.exists("t")
        assert isinstance(conn, Connector)
        # The plain preset allows column swap (no WAL/MVCC in the way).
        assert conn.capabilities == Capabilities(
            column_swap=True, query_profiles=True,
            window_functions=True, in_process=True, process_safe=True,
        )


# ---------------------------------------------------------------------------
# Connector parity: embedded vs sqlite
# ---------------------------------------------------------------------------
def _build_trainset(conn, n=600, seed=11):
    rng = np.random.default_rng(seed)
    conn.create_table("sales", {
        "date_id": rng.integers(0, 40, n),
        "item_id": rng.integers(0, 25, n),
        "net_profit": rng.normal(size=n),
    })
    conn.create_table("date", {
        "date_id": np.arange(40),
        "holiday": rng.integers(0, 2, 40).astype(np.float64),
        "weekend": rng.normal(size=40),
    })
    conn.create_table("item", {
        "item_id": np.arange(25),
        "price": rng.normal(size=25),
    })
    train_set = repro.join_graph(conn)
    train_set.add_node("sales", y="net_profit")
    train_set.add_node("date", X=["holiday", "weekend"])
    train_set.add_node("item", X=["price"])
    train_set.add_edge("sales", "date", ["date_id"])
    train_set.add_edge("sales", "item", ["item_id"])
    return train_set


def _tree_shape(node):
    """Recursive (relation, column, op, value, prediction) skeleton."""
    if node is None:
        return None
    pred = None
    if node.predicate is not None:
        pred = (node.relation, node.predicate.column, node.predicate.op,
                node.predicate.value)
    return (pred, round(float(node.prediction or 0.0), 9),
            _tree_shape(node.left), _tree_shape(node.right))


class TestConnectorParity:
    """Embedded is the reference; every external backend in the matrix
    (sqlite always, duckdb when installed) must grow the same model."""

    @pytest.mark.parametrize("backend", backend_matrix("sqlite"))
    def test_single_tree_identical_structure(self, backend):
        models = {}
        for name in ("embedded", backend):
            train_set = _build_trainset(repro.connect(backend=name))
            models[name] = repro.train(
                {"model": "tree", "num_leaves": 6, "min_data_in_leaf": 2},
                train_set,
            )
        assert _tree_shape(models["embedded"].root) == \
            _tree_shape(models[backend].root)

    @pytest.mark.parametrize("backend", backend_matrix("sqlite"))
    def test_gradient_boosting_parity_within_1e9(self, backend):
        rmses = {}
        shapes = {}
        for name in ("embedded", backend):
            train_set = _build_trainset(repro.connect(backend=name))
            model = repro.train(
                {"objective": "regression", "num_iterations": 4,
                 "num_leaves": 5, "min_data_in_leaf": 2},
                train_set,
            )
            rmses[name] = repro.evaluate_rmse(model, train_set)
            shapes[name] = [_tree_shape(t.root) for t in model.trees]
        assert shapes["embedded"] == shapes[backend]
        assert rmses["embedded"] == pytest.approx(rmses[backend], abs=1e-9)

    @pytest.mark.parametrize("backend", backend_matrix("sqlite"))
    def test_predictions_align_rowwise(self, backend):
        scores = {}
        for name in ("embedded", backend):
            train_set = _build_trainset(repro.connect(backend=name))
            model = repro.train(
                {"objective": "regression", "num_iterations": 2,
                 "num_leaves": 4, "min_data_in_leaf": 2},
                train_set,
            )
            scores[name] = repro.predict(model, train_set)
        np.testing.assert_allclose(scores["embedded"], scores[backend],
                                   atol=1e-9)

    def test_sqlite_leaves_no_temp_tables(self):
        conn = repro.connect(backend="sqlite")
        train_set = _build_trainset(conn)
        repro.train(
            {"objective": "regression", "num_iterations": 2, "num_leaves": 4},
            train_set,
        )
        from repro.storage.catalog import TEMP_PREFIX

        leftovers = [t for t in conn.table_names()
                     if t.startswith(TEMP_PREFIX)]
        assert leftovers == []

    def test_random_forest_trains_on_sqlite(self):
        train_set = _build_trainset(repro.connect(backend="sqlite"))
        model = repro.train(
            {"boosting_type": "rf", "num_iterations": 2, "num_leaves": 4,
             "subsample": 0.5, "min_data_in_leaf": 2},
            train_set,
        )
        assert len(model.trees) == 2
        assert np.isfinite(repro.evaluate_rmse(model, train_set))

    def test_window_fallback_matches_sql_split_path(self):
        """With the window_functions capability off, the split finder
        uses the client-side prefix scan — and grows the same model."""
        rmses = {}
        for windows in (True, False):
            conn = repro.connect(backend="sqlite")
            if not windows:
                conn.capabilities = Capabilities(
                    column_swap=False, query_profiles=True,
                    window_functions=False, in_process=True,
                )
            train_set = _build_trainset(conn)
            model = repro.train(
                {"objective": "regression", "num_iterations": 3,
                 "num_leaves": 5, "min_data_in_leaf": 2},
                train_set,
            )
            rmses[windows] = repro.evaluate_rmse(model, train_set)
        assert rmses[True] == pytest.approx(rmses[False], abs=1e-9)

    def test_update_strategies_agree_on_sqlite(self):
        """All logical strategies collapse to the same physical write on
        sqlite; the models they produce must agree with each other."""
        rmses = []
        for strategy in ("swap", "update", "create"):
            train_set = _build_trainset(repro.connect(backend="sqlite"))
            model = repro.train(
                {"objective": "regression", "num_iterations": 3,
                 "num_leaves": 4, "update_strategy": strategy},
                train_set,
            )
            rmses.append(repro.evaluate_rmse(model, train_set))
        assert rmses[0] == pytest.approx(rmses[1], abs=1e-9)
        assert rmses[0] == pytest.approx(rmses[2], abs=1e-9)


class TestSQLiteFigure4Flow:
    def test_example_6_on_sqlite(self):
        """The paper's Example 6 verbatim, on a real second DBMS."""
        rng = np.random.default_rng(0)
        n = 400
        conn = repro.connect(
            backend="sqlite",
            sales={
                "date_id": rng.integers(0, 30, n),
                "net_profit": rng.normal(size=n),
            },
            date={
                "date_id": np.arange(30),
                "holiday": rng.integers(0, 2, 30),
                "weekend": rng.integers(0, 2, 30),
            },
        )
        train_set = repro.join_graph(conn)
        train_set.add_node("sales", Y=["net_profit"])
        train_set.add_node("date", X=["holiday", "weekend"])
        train_set.add_edge("sales", "date", ["date_id"])
        model = repro.train(
            {"objective": "regression", "num_iterations": 3, "num_leaves": 4},
            train_set,
        )
        scores = repro.predict(model, train_set)
        assert len(scores) == n
        assert np.isfinite(repro.evaluate_rmse(model, train_set))

    def test_multiclass_softmax_on_sqlite(self):
        rng = np.random.default_rng(3)
        n = 300
        conn = repro.connect(backend="sqlite")
        conn.create_table("f", {
            "k": rng.integers(0, 20, n),
            "label": rng.integers(0, 3, n),
        })
        conn.create_table("d", {"k": np.arange(20), "x": rng.normal(size=20)})
        graph = JoinGraph(conn)
        graph.add_relation("f", y="label", is_fact=True)
        graph.add_relation("d", features=["x"])
        graph.add_edge("f", "d", ["k"])
        model = repro.train_gradient_boosting(
            conn, graph,
            {"objective": "softmax", "num_class": 3, "num_iterations": 2,
             "num_leaves": 4},
        )
        frame = repro.feature_frame(conn, graph)
        proba = model.predict_proba(frame)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


# ---------------------------------------------------------------------------
# Error taxonomy (ISSUE 8): raw driver errors never escape a connector
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    """Only BackendError subclasses escape the backend execute paths."""

    def test_hierarchy(self):
        from repro.exceptions import (
            BackendError,
            BackendExecutionError,
            ReproError,
            TransientBackendError,
        )

        # BackendExecutionError stays catchable at every legacy
        # `except ExecutionError` site, and transient is a refinement.
        assert issubclass(BackendError, ReproError)
        assert issubclass(BackendExecutionError, BackendError)
        assert issubclass(BackendExecutionError, ExecutionError)
        assert issubclass(TransientBackendError, BackendExecutionError)

    def test_sqlite_bad_sql_is_translated(self):
        import sqlite3

        from repro.exceptions import BackendExecutionError

        conn = SQLiteConnector()
        conn.create_table("t", {"a": [1, 2]})
        for sql in (
            "SELECT nope FROM t",
            "SELECT FROM WHERE",
            "SELECT * FROM missing_table",
        ):
            with pytest.raises(BackendExecutionError) as excinfo:
                conn.execute(sql)
            assert not isinstance(excinfo.value, sqlite3.Error)
            # the raw driver error rides along as the cause
            assert isinstance(excinfo.value.__cause__, sqlite3.Error)

    def test_sqlite_transient_classification(self):
        import sqlite3

        from repro.backends.sqlite3_backend import _translate_sqlite_error
        from repro.exceptions import (
            BackendExecutionError,
            TransientBackendError,
        )

        locked = _translate_sqlite_error(
            sqlite3.OperationalError("database is locked"), "ctx"
        )
        busy = _translate_sqlite_error(
            sqlite3.OperationalError("database table is busy"), "ctx"
        )
        syntax = _translate_sqlite_error(
            sqlite3.OperationalError('near "FROM": syntax error'), "ctx"
        )
        integrity = _translate_sqlite_error(
            sqlite3.IntegrityError("UNIQUE constraint failed"), "ctx"
        )
        assert isinstance(locked, TransientBackendError)
        assert isinstance(busy, TransientBackendError)
        assert not isinstance(syntax, TransientBackendError)
        assert isinstance(syntax, BackendExecutionError)
        assert not isinstance(integrity, TransientBackendError)

    def test_duckdb_transient_classification(self):
        """The duckdb mapper is a pure function — testable without the
        optional package installed."""
        from repro.backends.duckdb_backend import _translate_duckdb_error
        from repro.exceptions import TransientBackendError

        class IOException(Exception):
            pass

        class BinderException(Exception):
            pass

        assert isinstance(
            _translate_duckdb_error(IOException("disk hiccup"), "ctx"),
            TransientBackendError,
        )
        assert isinstance(
            _translate_duckdb_error(
                BinderException("database is locked"), "ctx"
            ),
            TransientBackendError,
        )
        assert not isinstance(
            _translate_duckdb_error(
                BinderException("column nope not found"), "ctx"
            ),
            TransientBackendError,
        )

    def test_closed_sqlite_connector_raises_backend_error(self):
        from repro.exceptions import BackendExecutionError

        conn = SQLiteConnector()
        conn.create_table("t", {"a": [1]})
        conn.close()
        with pytest.raises(BackendExecutionError):
            conn.execute_read("SELECT * FROM t")

    def test_transient_caught_by_legacy_execution_error_sites(self):
        from repro.exceptions import TransientBackendError

        with pytest.raises(ExecutionError):
            raise TransientBackendError("still an execution error")

    def test_backend_error_importable_from_backends_package(self):
        """Compat: BackendError moved to repro.exceptions but the old
        import path keeps working."""
        from repro.backends.base import BackendError as from_base
        from repro.exceptions import BackendError as from_exceptions

        assert from_base is from_exceptions is BackendError
