"""Public API surface (Figure 4 / Example 6) and dataset generators."""

import numpy as np
import pytest

import repro
from repro.datasets import favorita, imdb, star_schema, tpcds, tpch
from repro.datasets.synthetic import residual_update_microbenchmark
from repro.exceptions import TrainingError
from repro.storage.table import StorageConfig


class TestPaperAPI:
    def test_example_6_flow(self):
        """The paper's Example 6, nearly verbatim."""
        rng = np.random.default_rng(0)
        n = 500
        conn = repro.connect(
            sales={
                "date_id": rng.integers(0, 30, n),
                "net_profit": rng.normal(size=n),
            },
            date={
                "date_id": np.arange(30),
                "holiday": rng.integers(0, 2, 30),
                "weekend": rng.integers(0, 2, 30),
            },
        )
        train_set = repro.join_graph(conn)
        train_set.add_node("sales", Y=["net_profit"])
        train_set.add_node("date", X=["holiday", "weekend"])
        train_set.add_edge("sales", "date", ["date_id"])
        model = repro.train(
            {"objective": "regression", "num_iterations": 3, "num_leaves": 4},
            train_set,
        )
        scores = repro.predict(model, train_set)
        assert len(scores) == n
        assert np.isfinite(repro.evaluate_rmse(model, train_set))

    def test_rf_via_boosting_type(self, tiny_star):
        db, graph = tiny_star
        train_set = repro.join_graph(db)
        train_set.graph = graph
        model = repro.train(
            {"boosting_type": "rf", "num_iterations": 3, "num_leaves": 4,
             "subsample": 0.8},
            train_set,
        )
        assert len(model.trees) == 3

    def test_single_tree_mode(self, tiny_star):
        db, graph = tiny_star
        train_set = repro.join_graph(db)
        train_set.graph = graph
        model = repro.train({"model": "tree", "num_leaves": 4}, train_set)
        assert model.num_leaves <= 4

    def test_train_requires_set(self):
        with pytest.raises(TrainingError):
            repro.train({}, None)

    def test_multiple_targets_rejected(self, db):
        db.create_table("t", {"a": [1], "b": [2.0]})
        train_set = repro.join_graph(db)
        with pytest.raises(TrainingError):
            train_set.add_node("t", Y=["a", "b"])

    def test_unknown_param_rejected(self, tiny_star):
        db, graph = tiny_star
        train_set = repro.join_graph(db)
        train_set.graph = graph
        with pytest.raises(TrainingError):
            repro.train({"learning_rat": 0.1}, train_set)

    def test_training_never_modifies_user_data(self, tiny_star):
        """The paper's safety contract (Section 5.1)."""
        db, graph = tiny_star
        before = {
            name: {
                col: db.table(name).column(col).values.copy()
                for col in db.table(name).column_names()
            }
            for name in ("fact", "dim0", "dim1")
        }
        repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4}
        )
        for name, columns in before.items():
            for col, values in columns.items():
                assert np.array_equal(db.table(name).column(col).values, values)


class TestDatasets:
    def test_favorita_shape(self):
        db, graph = favorita(num_fact_rows=1000, num_extra_features=3)
        assert db.table("sales").num_rows() == 1000
        assert len(graph.all_features()) == 5 + 3
        graph.validate()
        from repro.core.boosting import is_snowflake

        assert is_snowflake(graph, "sales")

    def test_favorita_feature_count_configurable(self):
        db, graph = favorita(num_fact_rows=200, num_extra_features=20)
        assert len(graph.all_features()) == 25

    def test_tpcds_scales_with_sf(self):
        db1, g1 = tpcds(sf=0.5, rows_per_sf=1000)
        db2, g2 = tpcds(sf=2.0, rows_per_sf=1000)
        assert db2.table("store_sales").num_rows() == 4 * db1.table(
            "store_sales"
        ).num_rows()

    def test_tpcds_num_features(self):
        db, graph = tpcds(sf=0.1, rows_per_sf=1000, num_features=24)
        assert len(graph.all_features()) == 24

    def test_tpch_orders_is_large_dimension(self):
        db, graph = tpch(sf=0.5, rows_per_sf=2000)
        assert db.table("orders").num_rows() == db.table("lineitem").num_rows() // 4

    def test_imdb_is_galaxy(self):
        db, graph = imdb(rows_per_fact=500)
        from repro.core.boosting import is_snowflake

        assert not is_snowflake(graph, "cast_info")
        assert set(graph.detect_fact_tables()) == {
            "cast_info", "movie_comp", "movie_info", "movie_key", "person_info"
        }

    def test_star_with_nulls(self):
        db, graph = star_schema(num_fact_rows=200, with_nulls=True, seed=1)
        feats = db.table("dim0").column("dfeat0")
        assert feats.is_null().any() or np.isnan(feats.values).any()

    def test_residual_microbenchmark(self):
        workload = residual_update_microbenchmark(
            num_rows=1000, num_extra_columns=2,
            config=StorageConfig.preset("d-swap"),
        )
        assert workload.db.table("f").num_rows() == 1000
        assert len(workload.leaf_ranges) == 8
        assert workload.db.table("f").column_names() == ["s", "d", "c1", "c2"]

    def test_training_works_on_every_generator(self):
        for db, graph in (
            favorita(num_fact_rows=800, num_extra_features=0),
            tpcds(sf=0.05, rows_per_sf=10_000),
            tpch(sf=0.02, rows_per_sf=50_000),
        ):
            model = repro.train_gradient_boosting(
                db, graph, {"num_iterations": 2, "num_leaves": 4},
            )
            assert len(model.trees) == 2
