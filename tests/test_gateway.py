"""ServingGateway: breakers, admission, deadlines, degradation, canary.

The PR-10 resilience contract: every admitted request is served
bit-identically to the healthy compiled path no matter which backend
path is failing; requests past the queue bound are shed immediately
(never queued unboundedly); a persistently failing path trips its
circuit breaker open and recovers through a half-open probe; and
deploys are safe — canary refuses a changed model, rollback restores
the previous digest without recompiling.

Breaker transitions are driven by an injected fake clock, chaos faults
by explicit :class:`FaultPlan` specs (which override any
``JOINBOOST_CHAOS`` environment plan, so these tests stay deterministic
inside the chaos-smoke env leg).
"""

import threading

import numpy as np
import pytest

import repro
from repro.datasets.synthetic import star_schema
from repro.exceptions import (
    CanaryParityError,
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServingError,
    TransientServingError,
)
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    PredictionService,
    ServingGateway,
)

TRAIN_PARAMS = {"num_iterations": 3, "num_leaves": 4, "seed": 5}
STAR = dict(num_fact_rows=300, num_dims=2, dim_size=10, seed=4)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def healthy(tiny_star):
    db, graph = tiny_star
    model = repro.train_gradient_boosting(db, graph, TRAIN_PARAMS)
    service = PredictionService(db, graph)
    service.deploy(model)
    return db, graph, model, service


def chaos_gateway(model, chaos_spec, **gateway_kwargs):
    """A gateway over the same star data on a chaos-wrapped connector.

    The explicit ``chaos=`` plan overrides any ``JOINBOOST_CHAOS`` env
    plan and ``retry=False`` keeps faults visible to the gateway instead
    of being absorbed by the retry layer.
    """
    conn = repro.connect("plain", chaos=chaos_spec, retry=False)
    _, graph = star_schema(db=conn, **STAR)
    service = PredictionService(conn, graph)
    service.deploy(model)
    return ServingGateway(service, **gateway_kwargs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=3), clock=clock
        )
        breaker.record_failure()
        breaker.record_success()  # success resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_rejects_and_counts(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, recovery_seconds=5.0),
            clock=clock,
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["rejections"] == 2

    def test_recovers_through_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, recovery_seconds=5.0),
            clock=clock,
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED
        trail = [
            (t["from"], t["to"]) for t in breaker.snapshot()["transitions"]
        ]
        assert trail == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_probe_failure_reopens_and_restarts_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, recovery_seconds=5.0),
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN
        clock.advance(4.0)  # recovery window restarted at the re-open
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_bounds_concurrent_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(
                failure_threshold=1, recovery_seconds=1.0, half_open_probes=1
            ),
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()  # only one probe slot

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(recovery_seconds=-1.0)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_probes=0)


class TestDeadlines:
    def test_env_deadline_configures_default(self, monkeypatch, healthy):
        _, _, _, service = healthy
        monkeypatch.setenv("JOINBOOST_SERVE_DEADLINE", "0.75")
        gateway = ServingGateway(service)
        assert gateway.deadline_seconds == 0.75

    def test_malformed_env_deadline_raises(self, monkeypatch, healthy):
        _, _, _, service = healthy
        monkeypatch.setenv("JOINBOOST_SERVE_DEADLINE", "fast")
        with pytest.raises(ServingError, match="JOINBOOST_SERVE_DEADLINE"):
            ServingGateway(service)
        monkeypatch.setenv("JOINBOOST_SERVE_DEADLINE", "-1")
        with pytest.raises(ServingError, match="> 0"):
            ServingGateway(service)

    def test_deadline_stops_the_ladder(self, healthy, monkeypatch):
        _, _, _, service = healthy
        clock = FakeClock()
        gateway = ServingGateway(service, deadline_seconds=1.0, clock=clock)

        def slow_failure(name="default"):
            clock.advance(2.0)  # the sql path burned the whole budget
            raise TransientServingError("injected")

        monkeypatch.setattr(service, "score_sql", slow_failure)
        with pytest.raises(DeadlineExceededError) as excinfo:
            gateway.score_sql()
        assert excinfo.value.deadline_seconds == 1.0
        assert excinfo.value.elapsed_seconds >= 1.0
        assert gateway.stats()["deadline_exceeded"] == 1


class TestAdmission:
    def _blocking_service(self, service, monkeypatch):
        """Make score_all block until released; returns (started, release)."""
        started = threading.Event()
        release = threading.Event()
        real = service.score_all

        def blocked(name="default", **kwargs):
            started.set()
            assert release.wait(timeout=10), "test forgot to release"
            return real(name)

        monkeypatch.setattr(service, "score_all", blocked)
        return started, release

    def test_sheds_past_queue_bound(self, healthy, monkeypatch):
        _, _, _, service = healthy
        gateway = ServingGateway(
            service, max_in_flight=1, max_queue_depth=0, deadline_seconds=30.0
        )
        started, release = self._blocking_service(service, monkeypatch)
        worker = threading.Thread(target=gateway.score_compiled, daemon=True)
        worker.start()
        assert started.wait(timeout=10)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            gateway.score_compiled()
        assert excinfo.value.in_flight == 1
        assert excinfo.value.max_queue_depth == 0
        release.set()
        worker.join(timeout=10)
        stats = gateway.stats()
        assert stats["shed"] == 1
        assert stats["served"] == 1

    def test_queued_request_proceeds_when_slot_frees(
        self, healthy, monkeypatch
    ):
        _, _, _, service = healthy
        gateway = ServingGateway(
            service, max_in_flight=1, max_queue_depth=1, deadline_seconds=30.0
        )
        started, release = self._blocking_service(service, monkeypatch)
        first = threading.Thread(target=gateway.score_compiled, daemon=True)
        first.start()
        assert started.wait(timeout=10)

        second_done = threading.Event()
        results = {}

        def second_client():
            results["response"] = gateway.score_compiled()
            second_done.set()

        second = threading.Thread(target=second_client, daemon=True)
        second.start()
        release.set()
        first.join(timeout=10)
        assert second_done.wait(timeout=10)
        assert results["response"].served_by == "compiled"
        assert gateway.stats()["served"] == 2
        assert gateway.stats()["shed"] == 0


class TestDegradation:
    def test_sql_fault_degrades_to_compiled_bit_identically(self, healthy):
        _, _, model, service = healthy
        expected = service.score_all()
        gateway = chaos_gateway(
            model, "tag=serve_sql:nth=1:times=100:kind=transient"
        )
        response = gateway.score_sql()
        assert response.served_by == "compiled"
        assert response.degraded
        assert "sql:TransientServingError" in response.degraded_reason
        assert np.array_equal(response.scores, expected)
        stats = gateway.stats()
        assert stats["degraded"] == 1
        assert stats["served"] == 1
        assert stats["service"]["serving_faults"]["transient"] == 1

    def test_cursor_fault_on_key_path_degrades_with_parity(self, healthy):
        _, _, model, service = healthy
        keys = {"k0": 3}
        expected = service.score_key(keys).column("jb_score").as_float()
        gateway = chaos_gateway(
            model, "tag=serve_key:nth=1:times=100:kind=cursor"
        )
        response = gateway.score_key(keys)
        assert response.served_by == "compiled"
        assert response.degraded
        assert np.array_equal(response.scores, expected)

    def test_latency_fault_stays_on_primary_path(self, healthy):
        _, _, model, service = healthy
        expected = service.score_all()
        gateway = chaos_gateway(
            model, "tag=serve_sql:nth=1:times=100:kind=latency:delay=0.01"
        )
        response = gateway.score_sql()
        assert response.served_by == "sql"
        assert not response.degraded
        assert np.array_equal(response.scores, expected)

    def test_breaker_trips_open_then_recovers(self, healthy):
        _, _, model, service = healthy
        expected = service.score_all()
        clock = FakeClock()
        gateway = chaos_gateway(
            model,
            "tag=serve_sql:nth=1:times=2:kind=transient",
            breaker_policy=BreakerPolicy(
                failure_threshold=2, recovery_seconds=10.0
            ),
            clock=clock,
        )
        # Two faults: both requests degrade, the second trips the breaker.
        for _ in range(2):
            response = gateway.score_sql()
            assert response.served_by == "compiled"
            assert np.array_equal(response.scores, expected)
        assert gateway.breaker("sql").state == OPEN
        # Open breaker: the sql path is skipped without being attempted.
        response = gateway.score_sql()
        assert response.served_by == "compiled"
        assert "sql:circuit_open" in response.degraded_reason
        # Recovery: half-open probe succeeds (the fault plan is spent).
        clock.advance(11.0)
        response = gateway.score_sql()
        assert response.served_by == "sql"
        assert not response.degraded
        assert np.array_equal(response.scores, expected)
        snapshot = gateway.breaker("sql").snapshot()
        assert snapshot["state"] == CLOSED
        trail = [(t["from"], t["to"]) for t in snapshot["transitions"]]
        assert trail == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_degrade_false_raises_instead_of_falling_through(self, healthy):
        _, _, model, service = healthy
        gateway = chaos_gateway(
            model,
            "tag=serve_sql:nth=1:times=100:kind=transient",
            breaker_policy=BreakerPolicy(failure_threshold=1),
        )
        with pytest.raises(TransientServingError):
            gateway.score_sql(degrade=False)
        # The failure tripped the breaker; strict mode now fails fast.
        with pytest.raises(CircuitOpenError):
            gateway.score_sql(degrade=False)
        assert gateway.stats()["failures"] == 2

    def test_every_path_failing_raises_serving_error(
        self, healthy, monkeypatch
    ):
        _, _, _, service = healthy
        gateway = ServingGateway(service)

        def boom(*args, **kwargs):
            raise TransientServingError("injected everywhere")

        monkeypatch.setattr(service, "score_sql", boom)
        monkeypatch.setattr(service, "score_all", boom)
        monkeypatch.setattr(gateway, "_recursive_scores", boom)
        with pytest.raises(ServingError, match="every scoring path"):
            gateway.score_sql()
        assert gateway.stats()["failures"] == 1

    def test_env_chaos_plan_is_survivable(self, healthy):
        """The chaos-smoke leg runs this suite under ``JOINBOOST_CHAOS``
        with a ``serve_``-tagged plan: a connector built with defaults
        picks that plan up (plus auto-retry).  Served bits must match
        the healthy reference either way — via retry absorption, or via
        the gateway's degradation ladder."""
        _, _, model, service = healthy
        expected = service.score_all()
        conn = repro.connect("plain")  # env chaos + auto-retry, if any
        _, graph = star_schema(db=conn, **STAR)
        env_service = PredictionService(conn, graph)
        env_service.deploy(model)
        gateway = ServingGateway(env_service)
        for _ in range(3):
            response = gateway.score_sql()
            assert np.array_equal(response.scores, expected)


class TestCanaryAndRollback:
    def test_canary_refuses_changed_model(self, healthy):
        db, graph, model, service = healthy
        gateway = ServingGateway(service)
        first = gateway.service.version()
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 5, "num_leaves": 4, "seed": 9}
        )
        with pytest.raises(CanaryParityError) as excinfo:
            gateway.deploy(retrained, canary=True)
        assert excinfo.value.live_digest == first
        assert excinfo.value.diverging_rows > 0
        assert gateway.service.version() == first  # live unchanged

    def test_canary_accepts_identical_model(self, healthy):
        _, _, model, service = healthy
        gateway = ServingGateway(service)
        digest = gateway.deploy(model, canary=True)
        assert digest == service.version()

    def test_force_promotes_then_rollback_without_recompile(self, healthy):
        db, graph, model, service = healthy
        gateway = ServingGateway(service)
        first = service.version()
        first_scores = gateway.score_compiled().scores
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 5, "num_leaves": 4, "seed": 9}
        )
        second = gateway.deploy(retrained, canary=True, force=True)
        assert service.version() == second
        assert service.history() == [first]
        stores_before = service.stats()["stores"]
        restored = gateway.rollback()
        assert restored == first
        assert service.history() == [second]
        rolled_scores = gateway.score_compiled().scores
        assert np.array_equal(rolled_scores, first_scores)
        # O(1) rollback: the retained kernel was still warm, no recompile.
        assert service.stats()["stores"] == stores_before

    def test_rollback_without_history_raises(self, healthy):
        _, _, _, service = healthy
        gateway = ServingGateway(service)
        with pytest.raises(ServingError, match="history"):
            gateway.rollback()

    def test_rollback_is_reversible(self, healthy):
        db, graph, model, service = healthy
        first = service.version()
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 5, "num_leaves": 4, "seed": 9}
        )
        second = service.deploy(retrained)
        assert service.rollback() == first
        assert service.rollback() == second
        assert service.version() == second
        assert service.history() == [first]
