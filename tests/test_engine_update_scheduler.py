"""Update strategies and the inter-query scheduler."""

import threading
import time

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.retry import (
    DEFAULT_RETRY_POLICY,
    RetryCensus,
    RetryPolicy,
    call_with_retry,
)
from repro.engine.scheduler import QueryScheduler
from repro.exceptions import StorageError, TransientBackendError
from repro.engine.update import apply_column_update, supported_strategies
from repro.storage.table import StorageConfig


def make_db(preset="plain"):
    db = Database(config=StorageConfig.preset(preset))
    db.create_table(
        "f", {"s": np.arange(10, dtype=np.float64), "d": np.arange(10)}
    )
    return db


class TestUpdateStrategies:
    @pytest.mark.parametrize("strategy", ["update", "create", "swap"])
    def test_strategies_agree(self, strategy):
        db = make_db("plain" if strategy != "swap" else "d-swap")
        new = np.full(10, 5.0)
        apply_column_update(db, "f", "s", new, strategy)
        assert np.allclose(db.table("f").column("s").values, 5.0)
        # other columns untouched
        assert np.array_equal(db.table("f").column("d").values, np.arange(10))

    def test_swap_rejected_on_stock_backend(self):
        db = make_db("d-mem")
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "swap")

    def test_swap_on_external_store(self):
        db = make_db("plain")
        from repro.storage.column import Column
        from repro.storage.table import ExternalColumnStore

        table = db.table("f")
        db.catalog.drop("f")
        db.register(ExternalColumnStore("f", list(table.columns())))
        apply_column_update(db, "f", "s", np.ones(10), "swap")
        assert np.allclose(db.table("f").column("s").values, 1.0)

    def test_unknown_strategy(self):
        db = make_db()
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "teleport")

    def test_supported_strategies(self):
        db = make_db("d-mem")
        support = supported_strategies(db.table("f"))
        assert support["update"] and support["create"] and not support["swap"]

    def test_update_in_place_pays_mvcc(self):
        db = make_db("d-mem")
        before = db._mvcc.version_count
        apply_column_update(db, "f", "s", np.zeros(10), "update")
        assert db._mvcc.version_count == before + 1

    def test_create_preserves_column_order(self):
        db = make_db()
        apply_column_update(db, "f", "s", np.zeros(10), "create")
        assert db.table("f").column_names() == ["s", "d"]


class TestScheduler:
    def test_dependencies_respected(self):
        scheduler = QueryScheduler(num_workers=4)
        seen = []
        lock = threading.Lock()

        def step(name):
            def run():
                with lock:
                    seen.append(name)
                return name
            return run

        a = scheduler.submit(step("a"))
        b = scheduler.submit(step("b"), deps=[a])
        c = scheduler.submit(step("c"), deps=[a])
        d = scheduler.submit(step("d"), deps=[b, c])
        report = scheduler.run()
        assert seen.index("a") < seen.index("b")
        assert seen.index("a") < seen.index("c")
        assert seen.index("d") == 3
        assert report.results()[0] == "a"

    def test_unknown_dependency(self):
        scheduler = QueryScheduler()
        with pytest.raises(ValueError):
            scheduler.submit(lambda: None, deps=[99])

    def test_error_propagates(self):
        scheduler = QueryScheduler(num_workers=2)

        def boom():
            raise RuntimeError("bad query")

        scheduler.submit(boom)
        with pytest.raises(RuntimeError):
            scheduler.run()

    def test_critical_path_shorter_than_sequential(self):
        scheduler = QueryScheduler(num_workers=4)

        def sleepy():
            time.sleep(0.02)

        first = scheduler.submit(sleepy)
        for _ in range(3):
            scheduler.submit(sleepy, deps=[first])
        report = scheduler.run()
        assert report.critical_path_seconds < report.sequential_seconds
        assert report.modelled_speedup() > 1.0

    def test_empty_run(self):
        report = QueryScheduler().run()
        assert report.sequential_seconds == 0.0
        assert report.critical_path_seconds == 0.0


class TestSchedulerExecution:
    """Execution semantics the training integration relies on (ISSUE 5)."""

    def test_worker_count_clamped(self):
        from repro.engine.scheduler import MAX_WORKERS

        assert QueryScheduler(num_workers=0).num_workers == 1
        assert QueryScheduler(num_workers=-3).num_workers == 1
        assert QueryScheduler(num_workers=10_000).num_workers == MAX_WORKERS
        assert QueryScheduler(num_workers=4).num_workers == 4

    @pytest.mark.parametrize("workers", [1, 4])
    def test_dependents_skipped_after_upstream_error(self, workers):
        scheduler = QueryScheduler(num_workers=workers)
        ran = []
        lock = threading.Lock()

        def record(name):
            def run():
                with lock:
                    ran.append(name)
                return name
            return run

        def boom():
            with lock:
                ran.append("boom")
            raise RuntimeError("upstream failed")

        bad = scheduler.submit(boom, label="bad")
        child = scheduler.submit(record("child"), deps=[bad])
        grandchild = scheduler.submit(record("grandchild"), deps=[child])
        independent = scheduler.submit(record("independent"))
        with pytest.raises(RuntimeError, match="upstream failed"):
            scheduler.run()
        # The failure is recorded, dependents never ran, the rest did.
        assert "independent" in ran
        assert "child" not in ran and "grandchild" not in ran
        assert scheduler._queries[child].skipped
        assert scheduler._queries[grandchild].skipped
        assert not scheduler._queries[independent].skipped
        assert scheduler._queries[independent].result == "independent"

    def test_first_error_by_id_regardless_of_workers(self):
        for workers in (1, 4):
            scheduler = QueryScheduler(num_workers=workers)

            def fail(msg):
                def run():
                    raise ValueError(msg)
                return run

            scheduler.submit(fail("first"))
            scheduler.submit(fail("second"))
            with pytest.raises(ValueError, match="first"):
                scheduler.run()

    def test_deps_validated_before_run(self):
        scheduler = QueryScheduler(num_workers=2)
        ok = scheduler.submit(lambda: 1)
        with pytest.raises(ValueError):
            scheduler.submit(lambda: 2, deps=[ok + 17])

    def test_results_deterministic_across_worker_counts(self):
        """The same DAG computes the same results() in the same order for
        num_workers in {1, 4} — what the tree-parity gates lean on."""
        outcomes = {}
        for workers in (1, 4):
            scheduler = QueryScheduler(num_workers=workers)
            upstream = [scheduler.submit(lambda k=k: k * k) for k in range(6)]
            for uid in upstream:
                scheduler.submit(
                    lambda u=uid: ("combined", u), deps=[uid]
                )
            report = scheduler.run()
            outcomes[workers] = report.results()
        assert outcomes[1] == outcomes[4]

    def test_serial_path_spawns_no_threads(self):
        before = threading.active_count()
        scheduler = QueryScheduler(num_workers=1)
        counts = []
        for _ in range(4):
            scheduler.submit(lambda: counts.append(threading.active_count()))
        scheduler.run()
        # Every query observed the same thread population as the caller.
        assert all(c == before for c in counts)

    def test_report_overlap_and_skipped_accounting(self):
        scheduler = QueryScheduler(num_workers=4)

        def sleepy():
            time.sleep(0.02)

        for _ in range(4):
            scheduler.submit(sleepy)
        report = scheduler.run()
        assert report.skipped == 0
        assert report.wall_seconds > 0
        # overlap = busy - wall, never negative.
        assert report.overlap_seconds >= 0.0
        assert report.sequential_seconds == pytest.approx(
            report.wall_seconds + report.overlap_seconds
        )


def flaky(times, exc=None, result="ok"):
    """A callable that raises ``times`` transient faults, then succeeds."""
    remaining = [times]

    def run():
        if remaining[0] > 0:
            remaining[0] -= 1
            raise exc or TransientBackendError("simulated transient fault")
        return result

    return run


FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


class TestRetryPolicy:
    """call_with_retry semantics the scheduler and connectors share."""

    def test_transient_retried_then_succeeds(self):
        census = RetryCensus()
        result = call_with_retry(flaky(2), FAST_RETRIES, census)
        assert result == "ok"
        snap = census.snapshot()
        assert snap["retries"] == 2
        assert snap["succeeded_after_retry"] == 1
        assert snap["exhausted"] == 0

    def test_exhaustion_raises_final_exception_with_attempts(self):
        census = RetryCensus()
        with pytest.raises(TransientBackendError) as excinfo:
            call_with_retry(flaky(10), FAST_RETRIES, census)
        assert excinfo.value.attempts == FAST_RETRIES.max_attempts
        assert census.snapshot()["exhausted"] == 1

    def test_non_transient_not_retried(self):
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError):
            call_with_retry(boom, FAST_RETRIES, RetryCensus())
        assert len(calls) == 1

    def test_budget_stops_before_max_attempts(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=1.0, budget_seconds=0.5
        )
        slept = []
        with pytest.raises(TransientBackendError) as excinfo:
            call_with_retry(
                flaky(10), policy, sleep=lambda s: slept.append(s)
            )
        # first delay (1.0s) would blow the 0.5s budget: no sleeping at all
        assert slept == []
        assert excinfo.value.attempts == 1

    def test_backoff_schedule_deterministic(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=0.03
        )
        assert policy.schedule() == [0.01, 0.02, 0.03]


class TestSchedulerRetry:
    """Transient faults retry inside the DAG before dependents are skipped."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_transient_query_retried_then_succeeds(self, workers):
        census = RetryCensus()
        scheduler = QueryScheduler(
            num_workers=workers, retry_policy=FAST_RETRIES, retry_census=census
        )
        qid = scheduler.submit(flaky(2), label="flaky")
        downstream = scheduler.submit(lambda: "ran", deps=[qid])
        report = scheduler.run()
        assert report.results() == ["ok", "ran"]
        assert report.retries == 2
        assert report.exhausted == 0
        assert census.snapshot()["succeeded_after_retry"] == 1

    @pytest.mark.parametrize("workers", [1, 4])
    def test_exhausted_query_reports_final_attempt(self, workers):
        """A retried-then-failed query must surface its *final* attempt's
        exception, stamped with the attempt count (ISSUE 8 satellite)."""
        scheduler = QueryScheduler(
            num_workers=workers, retry_policy=FAST_RETRIES
        )
        attempt_errors = []

        def always_transient():
            exc = TransientBackendError(
                f"fault on attempt {len(attempt_errors) + 1}"
            )
            attempt_errors.append(exc)
            raise exc

        qid = scheduler.submit(always_transient, label="doomed")
        child = scheduler.submit(lambda: "never", deps=[qid])
        with pytest.raises(TransientBackendError) as excinfo:
            scheduler.run()
        # the raised error is the LAST attempt's, not the first's
        assert excinfo.value is attempt_errors[-1]
        assert excinfo.value.attempts == FAST_RETRIES.max_attempts
        assert scheduler._queries[child].skipped
        assert scheduler._queries[qid].attempts == FAST_RETRIES.max_attempts

    def test_non_transient_error_not_retried_in_dag(self):
        scheduler = QueryScheduler(num_workers=2, retry_policy=FAST_RETRIES)
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not transient")

        scheduler.submit(boom)
        with pytest.raises(ValueError):
            scheduler.run()
        assert len(calls) == 1

    def test_no_policy_means_no_retry(self):
        scheduler = QueryScheduler(num_workers=2)
        scheduler.submit(flaky(1))
        with pytest.raises(TransientBackendError):
            scheduler.run()

    def test_report_retry_counters_zero_without_faults(self):
        scheduler = QueryScheduler(
            num_workers=2, retry_policy=DEFAULT_RETRY_POLICY
        )
        scheduler.submit(lambda: 1)
        scheduler.submit(lambda: 2)
        report = scheduler.run()
        assert report.retries == 0
        assert report.exhausted == 0


# ---------------------------------------------------------------------------
# Per-query outcome reporting (ISSUE 9 satellite: the report names which
# query exhausted its retries or timed out, not just aggregate counts)
# ---------------------------------------------------------------------------
def _task_double(x):
    return 2 * x


def _spec_for(fn, *args, chaos=None):
    """A process-executor task spec; chaos rides along like the frontier's."""
    def spec():
        payload = {"kind": "callable", "fn": fn, "args": args}
        if chaos is not None:
            payload["chaos"] = chaos
        return payload
    return spec


class TestScheduleReportShape:
    def test_query_outcomes_records_every_query(self):
        scheduler = QueryScheduler(num_workers=2, retry_policy=FAST_RETRIES)
        ok = scheduler.submit(flaky(1), label="recovers")
        clean = scheduler.submit(lambda: 7, label="clean")
        report = scheduler.run()
        outcomes = report.query_outcomes()
        assert [o["query_id"] for o in outcomes] == [ok, clean]
        by_label = {o["label"]: o for o in outcomes}
        assert by_label["recovers"] == {
            "query_id": ok, "label": "recovers", "status": "ok",
            "attempts": 2, "retried": True, "exhausted": False,
            "timed_out": False, "redispatches": 0, "error": None,
        }
        assert by_label["clean"]["attempts"] == 1
        assert report.exhausted_queries == []
        assert report.timed_out_queries == []
        assert report.executor == "thread"

    def test_exhausted_query_named_in_report(self):
        from repro.engine.scheduler import ScheduleReport

        scheduler = QueryScheduler(num_workers=2, retry_policy=FAST_RETRIES)
        doomed = scheduler.submit(flaky(10), label="doomed")
        child = scheduler.submit(lambda: 1, deps=[doomed], label="child")
        with pytest.raises(TransientBackendError):
            scheduler.run()
        report = ScheduleReport(
            list(scheduler._queries.values()), 0.0, workers=2
        )
        assert report.exhausted_queries == ["doomed"]
        by_label = {o["label"]: o for o in report.query_outcomes()}
        assert by_label["doomed"]["status"] == "error"
        assert by_label["doomed"]["exhausted"] is True
        assert by_label["doomed"]["error"] == "TransientBackendError"
        assert by_label["child"]["status"] == "skipped"

    def test_unlabeled_query_described_by_id(self):
        from repro.engine.scheduler import ScheduleReport, ScheduledQuery

        q = ScheduledQuery(query_id=3, fn=lambda: None)
        q.timed_out = True
        report = ScheduleReport([q], 0.0, workers=1)
        assert report.timed_out_queries == ["query 3"]


class TestProcessExecutorScheduler:
    """The scheduler's process path: wave dispatch, crash recovery and
    the supervision fields flowing into the report."""

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            QueryScheduler(num_workers=2, executor="rowboat")

    def test_process_run_merges_pool_and_inline_results(self):
        scheduler = QueryScheduler(num_workers=2, executor="process")
        pooled = scheduler.submit(
            lambda: None, spec=_spec_for(_task_double, 21), label="pooled"
        )
        inline = scheduler.submit(
            lambda: "inline", deps=[pooled], label="inline"
        )
        report = scheduler.run()
        assert report.results() == [42, "inline"]
        assert report.executor == "process"

    def test_crashed_task_redispatch_surfaces_in_report(self):
        scheduler = QueryScheduler(num_workers=2, executor="process")
        victim = scheduler.submit(
            lambda: None,
            spec=_spec_for(_task_double, 5, chaos="worker_crash"),
            label="victim",
        )
        report = scheduler.run()
        assert report.results() == [10]
        assert report.redispatched == 1
        by_label = {o["label"]: o for o in report.query_outcomes()}
        assert by_label["victim"]["redispatches"] == 1
        assert by_label["victim"]["attempts"] == 2

    def test_stalled_task_named_in_report(self):
        scheduler = QueryScheduler(
            num_workers=2, executor="process", task_deadline=0.5
        )
        scheduler.submit(
            lambda: None,
            spec=_spec_for(_task_double, 4, chaos="stall"),
            label="sleeper",
        )
        report = scheduler.run()
        assert report.results() == [8]
        assert report.timed_out == 1
        assert report.timed_out_queries == ["sleeper"]

    def test_declined_spec_runs_inline(self):
        scheduler = QueryScheduler(num_workers=2, executor="process")
        scheduler.submit(lambda: "fell back", spec=lambda: None, label="x")
        report = scheduler.run()
        assert report.results() == ["fell back"]
