"""Update strategies and the inter-query scheduler."""

import threading
import time

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.scheduler import QueryScheduler
from repro.engine.update import apply_column_update, supported_strategies
from repro.exceptions import StorageError
from repro.storage.table import StorageConfig


def make_db(preset="plain"):
    db = Database(config=StorageConfig.preset(preset))
    db.create_table(
        "f", {"s": np.arange(10, dtype=np.float64), "d": np.arange(10)}
    )
    return db


class TestUpdateStrategies:
    @pytest.mark.parametrize("strategy", ["update", "create", "swap"])
    def test_strategies_agree(self, strategy):
        db = make_db("plain" if strategy != "swap" else "d-swap")
        new = np.full(10, 5.0)
        apply_column_update(db, "f", "s", new, strategy)
        assert np.allclose(db.table("f").column("s").values, 5.0)
        # other columns untouched
        assert np.array_equal(db.table("f").column("d").values, np.arange(10))

    def test_swap_rejected_on_stock_backend(self):
        db = make_db("d-mem")
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "swap")

    def test_swap_on_external_store(self):
        db = make_db("plain")
        from repro.storage.column import Column
        from repro.storage.table import ExternalColumnStore

        table = db.table("f")
        db.catalog.drop("f")
        db.register(ExternalColumnStore("f", list(table.columns())))
        apply_column_update(db, "f", "s", np.ones(10), "swap")
        assert np.allclose(db.table("f").column("s").values, 1.0)

    def test_unknown_strategy(self):
        db = make_db()
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "teleport")

    def test_supported_strategies(self):
        db = make_db("d-mem")
        support = supported_strategies(db.table("f"))
        assert support["update"] and support["create"] and not support["swap"]

    def test_update_in_place_pays_mvcc(self):
        db = make_db("d-mem")
        before = db._mvcc.version_count
        apply_column_update(db, "f", "s", np.zeros(10), "update")
        assert db._mvcc.version_count == before + 1

    def test_create_preserves_column_order(self):
        db = make_db()
        apply_column_update(db, "f", "s", np.zeros(10), "create")
        assert db.table("f").column_names() == ["s", "d"]


class TestScheduler:
    def test_dependencies_respected(self):
        scheduler = QueryScheduler(num_workers=4)
        seen = []
        lock = threading.Lock()

        def step(name):
            def run():
                with lock:
                    seen.append(name)
                return name
            return run

        a = scheduler.submit(step("a"))
        b = scheduler.submit(step("b"), deps=[a])
        c = scheduler.submit(step("c"), deps=[a])
        d = scheduler.submit(step("d"), deps=[b, c])
        report = scheduler.run()
        assert seen.index("a") < seen.index("b")
        assert seen.index("a") < seen.index("c")
        assert seen.index("d") == 3
        assert report.results()[0] == "a"

    def test_unknown_dependency(self):
        scheduler = QueryScheduler()
        with pytest.raises(ValueError):
            scheduler.submit(lambda: None, deps=[99])

    def test_error_propagates(self):
        scheduler = QueryScheduler(num_workers=2)

        def boom():
            raise RuntimeError("bad query")

        scheduler.submit(boom)
        with pytest.raises(RuntimeError):
            scheduler.run()

    def test_critical_path_shorter_than_sequential(self):
        scheduler = QueryScheduler(num_workers=4)

        def sleepy():
            time.sleep(0.02)

        first = scheduler.submit(sleepy)
        for _ in range(3):
            scheduler.submit(sleepy, deps=[first])
        report = scheduler.run()
        assert report.critical_path_seconds < report.sequential_seconds
        assert report.modelled_speedup() > 1.0

    def test_empty_run(self):
        report = QueryScheduler().run()
        assert report.sequential_seconds == 0.0
        assert report.critical_path_seconds == 0.0
