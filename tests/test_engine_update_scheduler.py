"""Update strategies and the inter-query scheduler."""

import threading
import time

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.scheduler import QueryScheduler
from repro.engine.update import apply_column_update, supported_strategies
from repro.exceptions import StorageError
from repro.storage.table import StorageConfig


def make_db(preset="plain"):
    db = Database(config=StorageConfig.preset(preset))
    db.create_table(
        "f", {"s": np.arange(10, dtype=np.float64), "d": np.arange(10)}
    )
    return db


class TestUpdateStrategies:
    @pytest.mark.parametrize("strategy", ["update", "create", "swap"])
    def test_strategies_agree(self, strategy):
        db = make_db("plain" if strategy != "swap" else "d-swap")
        new = np.full(10, 5.0)
        apply_column_update(db, "f", "s", new, strategy)
        assert np.allclose(db.table("f").column("s").values, 5.0)
        # other columns untouched
        assert np.array_equal(db.table("f").column("d").values, np.arange(10))

    def test_swap_rejected_on_stock_backend(self):
        db = make_db("d-mem")
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "swap")

    def test_swap_on_external_store(self):
        db = make_db("plain")
        from repro.storage.column import Column
        from repro.storage.table import ExternalColumnStore

        table = db.table("f")
        db.catalog.drop("f")
        db.register(ExternalColumnStore("f", list(table.columns())))
        apply_column_update(db, "f", "s", np.ones(10), "swap")
        assert np.allclose(db.table("f").column("s").values, 1.0)

    def test_unknown_strategy(self):
        db = make_db()
        with pytest.raises(StorageError):
            apply_column_update(db, "f", "s", np.zeros(10), "teleport")

    def test_supported_strategies(self):
        db = make_db("d-mem")
        support = supported_strategies(db.table("f"))
        assert support["update"] and support["create"] and not support["swap"]

    def test_update_in_place_pays_mvcc(self):
        db = make_db("d-mem")
        before = db._mvcc.version_count
        apply_column_update(db, "f", "s", np.zeros(10), "update")
        assert db._mvcc.version_count == before + 1

    def test_create_preserves_column_order(self):
        db = make_db()
        apply_column_update(db, "f", "s", np.zeros(10), "create")
        assert db.table("f").column_names() == ["s", "d"]


class TestScheduler:
    def test_dependencies_respected(self):
        scheduler = QueryScheduler(num_workers=4)
        seen = []
        lock = threading.Lock()

        def step(name):
            def run():
                with lock:
                    seen.append(name)
                return name
            return run

        a = scheduler.submit(step("a"))
        b = scheduler.submit(step("b"), deps=[a])
        c = scheduler.submit(step("c"), deps=[a])
        d = scheduler.submit(step("d"), deps=[b, c])
        report = scheduler.run()
        assert seen.index("a") < seen.index("b")
        assert seen.index("a") < seen.index("c")
        assert seen.index("d") == 3
        assert report.results()[0] == "a"

    def test_unknown_dependency(self):
        scheduler = QueryScheduler()
        with pytest.raises(ValueError):
            scheduler.submit(lambda: None, deps=[99])

    def test_error_propagates(self):
        scheduler = QueryScheduler(num_workers=2)

        def boom():
            raise RuntimeError("bad query")

        scheduler.submit(boom)
        with pytest.raises(RuntimeError):
            scheduler.run()

    def test_critical_path_shorter_than_sequential(self):
        scheduler = QueryScheduler(num_workers=4)

        def sleepy():
            time.sleep(0.02)

        first = scheduler.submit(sleepy)
        for _ in range(3):
            scheduler.submit(sleepy, deps=[first])
        report = scheduler.run()
        assert report.critical_path_seconds < report.sequential_seconds
        assert report.modelled_speedup() > 1.0

    def test_empty_run(self):
        report = QueryScheduler().run()
        assert report.sequential_seconds == 0.0
        assert report.critical_path_seconds == 0.0


class TestSchedulerExecution:
    """Execution semantics the training integration relies on (ISSUE 5)."""

    def test_worker_count_clamped(self):
        from repro.engine.scheduler import MAX_WORKERS

        assert QueryScheduler(num_workers=0).num_workers == 1
        assert QueryScheduler(num_workers=-3).num_workers == 1
        assert QueryScheduler(num_workers=10_000).num_workers == MAX_WORKERS
        assert QueryScheduler(num_workers=4).num_workers == 4

    @pytest.mark.parametrize("workers", [1, 4])
    def test_dependents_skipped_after_upstream_error(self, workers):
        scheduler = QueryScheduler(num_workers=workers)
        ran = []
        lock = threading.Lock()

        def record(name):
            def run():
                with lock:
                    ran.append(name)
                return name
            return run

        def boom():
            with lock:
                ran.append("boom")
            raise RuntimeError("upstream failed")

        bad = scheduler.submit(boom, label="bad")
        child = scheduler.submit(record("child"), deps=[bad])
        grandchild = scheduler.submit(record("grandchild"), deps=[child])
        independent = scheduler.submit(record("independent"))
        with pytest.raises(RuntimeError, match="upstream failed"):
            scheduler.run()
        # The failure is recorded, dependents never ran, the rest did.
        assert "independent" in ran
        assert "child" not in ran and "grandchild" not in ran
        assert scheduler._queries[child].skipped
        assert scheduler._queries[grandchild].skipped
        assert not scheduler._queries[independent].skipped
        assert scheduler._queries[independent].result == "independent"

    def test_first_error_by_id_regardless_of_workers(self):
        for workers in (1, 4):
            scheduler = QueryScheduler(num_workers=workers)

            def fail(msg):
                def run():
                    raise ValueError(msg)
                return run

            scheduler.submit(fail("first"))
            scheduler.submit(fail("second"))
            with pytest.raises(ValueError, match="first"):
                scheduler.run()

    def test_deps_validated_before_run(self):
        scheduler = QueryScheduler(num_workers=2)
        ok = scheduler.submit(lambda: 1)
        with pytest.raises(ValueError):
            scheduler.submit(lambda: 2, deps=[ok + 17])

    def test_results_deterministic_across_worker_counts(self):
        """The same DAG computes the same results() in the same order for
        num_workers in {1, 4} — what the tree-parity gates lean on."""
        outcomes = {}
        for workers in (1, 4):
            scheduler = QueryScheduler(num_workers=workers)
            upstream = [scheduler.submit(lambda k=k: k * k) for k in range(6)]
            for uid in upstream:
                scheduler.submit(
                    lambda u=uid: ("combined", u), deps=[uid]
                )
            report = scheduler.run()
            outcomes[workers] = report.results()
        assert outcomes[1] == outcomes[4]

    def test_serial_path_spawns_no_threads(self):
        before = threading.active_count()
        scheduler = QueryScheduler(num_workers=1)
        counts = []
        for _ in range(4):
            scheduler.submit(lambda: counts.append(threading.active_count()))
        scheduler.run()
        # Every query observed the same thread population as the caller.
        assert all(c == before for c in counts)

    def test_report_overlap_and_skipped_accounting(self):
        scheduler = QueryScheduler(num_workers=4)

        def sleepy():
            time.sleep(0.02)

        for _ in range(4):
            scheduler.submit(sleepy)
        report = scheduler.run()
        assert report.skipped == 0
        assert report.wall_seconds > 0
        # overlap = busy - wall, never negative.
        assert report.overlap_seconds >= 0.0
        assert report.sequential_seconds == pytest.approx(
            report.wall_seconds + report.overlap_seconds
        )
