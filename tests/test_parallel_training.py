"""Real inter-query parallelism (ISSUE 5): tree-for-tree parity + wiring.

The load-bearing acceptance claim: training with ``num_workers=4`` grows
*identical* trees to ``num_workers=1`` on both the embedded and sqlite
backends — across growth policies, categorical features and
missing-value routing — because each relation's fused split query
computes exactly what the serial loop would and results merge in
relation order.  Alongside parity, these tests pin the wiring: the
scheduler actually engages (census reports parallel rounds), worker
counts resolve from params/env, the sqlite reader pool serves
concurrent threads, and unsupported backends fall back to serial.
"""

import dataclasses
import threading

import numpy as np
import pytest

import repro
from repro.backends import SQLiteConnector
from repro.backends.base import Capabilities
from repro.backends.embedded import EmbeddedConnector
from repro.core.params import NUM_WORKERS_ENV, TrainParams
from repro.datasets import favorita
from repro.engine.database import Database
from repro.exceptions import TrainingError

from test_frontier_batching import mixed_schema


def trees_of(model):
    return [tree.to_dict() for tree in model.trees]


# ---------------------------------------------------------------------------
# Tree-for-tree parity: num_workers=4 == num_workers=1
# ---------------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    @pytest.mark.parametrize("missing", ["right", "both"])
    def test_embedded_gbm_parity(self, growth, missing):
        grown = {}
        for workers in (1, 4):
            db, graph = mixed_schema(Database())
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 8, "min_data_in_leaf": 2,
                 "growth": growth, "missing": missing,
                 "num_workers": workers},
            )
            grown[workers] = (
                trees_of(model), repro.rmse_on_join(db, graph, model)
            )
        assert grown[4][0] == grown[1][0]
        assert grown[4][1] == grown[1][1]

    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    @pytest.mark.parametrize("missing", ["right", "both"])
    def test_sqlite_gbm_parity(self, growth, missing):
        grown = {}
        for workers in (1, 4):
            db, graph = mixed_schema(SQLiteConnector())
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 8, "min_data_in_leaf": 2,
                 "growth": growth, "missing": missing,
                 "num_workers": workers},
            )
            grown[workers] = (
                trees_of(model), repro.rmse_on_join(db, graph, model)
            )
            db.close()
        assert grown[4][0] == grown[1][0]
        assert grown[4][1] == grown[1][1]

    def test_parity_multi_relation_snowflake(self):
        """Favorita: 5+ relations per round, the shape the worker pool
        actually fans out."""
        grown = {}
        for workers in (1, 4):
            db, graph = favorita(num_fact_rows=3000, num_extra_features=4)
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 8, "min_data_in_leaf": 3,
                 "num_workers": workers},
            )
            grown[workers] = trees_of(model)
        assert grown[4] == grown[1]

    def test_parity_rebuild_labels(self):
        """The rebuild-label path (per-round labeled fact copy) also
        parallelizes — its carry temps are task-owned, not cache-owned."""
        grown = {}
        for workers in (1, 4):
            db, graph = favorita(num_fact_rows=2500, num_extra_features=2)
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
                 "frontier_state": "rebuild", "num_workers": workers},
            )
            grown[workers] = trees_of(model)
        assert grown[4] == grown[1]

    def test_random_forest_parity_embedded(self):
        grown = {}
        for workers in (1, 4):
            db, graph = favorita(num_fact_rows=3000, num_extra_features=2)
            forest = repro.train_random_forest(
                db, graph,
                {"num_iterations": 5, "num_leaves": 4, "subsample": 0.5,
                 "feature_fraction": 0.8, "min_data_in_leaf": 3,
                 "num_workers": workers},
            )
            grown[workers] = trees_of(forest)
            assert len(forest.history) == 5
        assert grown[4] == grown[1]

    def test_random_forest_parity_sqlite(self):
        grown = {}
        for workers in (1, 4):
            db, graph = favorita(
                db=SQLiteConnector(), num_fact_rows=2000, num_extra_features=2
            )
            forest = repro.train_random_forest(
                db, graph,
                {"num_iterations": 3, "num_leaves": 4, "subsample": 0.5,
                 "min_data_in_leaf": 3, "num_workers": workers},
            )
            grown[workers] = trees_of(forest)
            db.close()
        assert grown[4] == grown[1]


# ---------------------------------------------------------------------------
# Wiring: the pool actually engages (and disengages) where it should
# ---------------------------------------------------------------------------
class TestWiring:
    def test_census_reports_parallel_rounds(self):
        db, graph = favorita(num_fact_rows=2000, num_extra_features=2)
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
             "num_workers": 4},
        )
        census = model.frontier_census
        assert census["num_workers"] == 4
        assert census["parallel_rounds"] > 0
        assert census["parallel_wall_seconds"] > 0.0
        assert census["parallel_busy_seconds"] >= census["parallel_wall_seconds"] - 1e-9
        assert census["parallel_overlap_seconds"] >= 0.0
        # Rounds fanned out, so there is nothing to explain.
        assert census["parallel_fallback_reason"] is None

    def test_serial_census_reports_no_parallel_rounds(self):
        db, graph = favorita(num_fact_rows=2000, num_extra_features=2)
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
             "num_workers": 1},
        )
        census = model.frontier_census
        assert census["parallel_rounds"] == 0
        assert "num_workers=1" in census["parallel_fallback_reason"]

    def test_backend_without_concurrent_read_stays_serial(self):
        db, graph = mixed_schema(EmbeddedConnector())
        db.capabilities = dataclasses.replace(
            db.capabilities, concurrent_read=False
        )
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 2,
             "num_workers": 4},
        )
        census = model.frontier_census
        assert census["parallel_rounds"] == 0
        # The silent-serialization bugfix: the census names the culprit.
        assert "concurrent_read" in census["parallel_fallback_reason"]
        assert model.trees  # trained fine, just serially

    def test_single_relation_round_stays_serial(self):
        """One feature-bearing relation = nothing to overlap."""
        db = Database()
        rng = np.random.default_rng(1)
        n = 600
        k = rng.integers(0, 20, n)
        db.create_table("fact", {"k": k, "yv": rng.normal(size=n)})
        db.create_table(
            "dim", {"k": np.arange(20), "d": rng.normal(size=20)}
        )
        from repro.joingraph.graph import JoinGraph

        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv", is_fact=True)
        graph.add_relation("dim", features=["d"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 4, "min_data_in_leaf": 2,
             "num_workers": 4},
        )
        census = model.frontier_census
        assert census["parallel_rounds"] == 0
        assert (
            "single feature-bearing relation"
            in census["parallel_fallback_reason"]
        )


# ---------------------------------------------------------------------------
# num_workers parameter resolution
# ---------------------------------------------------------------------------
class TestNumWorkersParam:
    def test_aliases_accepted(self):
        for alias in ("num_workers", "workers", "num_threads", "n_jobs"):
            params = TrainParams.from_dict({alias: 3})
            assert params.num_workers == 3
            assert params.resolved_workers() == 3

    def test_auto_resolves_to_bounded_cpu_count(self):
        import os

        params = TrainParams.from_dict({})
        resolved = TrainParams(num_workers="auto").resolved_workers()
        assert 1 <= resolved <= 4
        assert resolved <= max(1, os.cpu_count() or 1)
        assert params.resolved_workers() == resolved or params.num_workers != "auto"

    def test_invalid_values_rejected(self):
        with pytest.raises(TrainingError):
            TrainParams(num_workers=0)
        with pytest.raises(TrainingError):
            TrainParams(num_workers="many")

    def test_numeric_string_accepted(self):
        assert TrainParams(num_workers="4").num_workers == 4

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "4")
        params = TrainParams.from_dict({})
        assert params.num_workers == 4
        # An explicit parameter always wins over the environment.
        pinned = TrainParams.from_dict({"num_workers": 1})
        assert pinned.num_workers == 1
        monkeypatch.setenv(NUM_WORKERS_ENV, "auto")
        assert TrainParams.from_dict({}).num_workers == "auto"

    def test_env_var_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "lots")
        with pytest.raises(TrainingError):
            TrainParams.from_dict({})


# ---------------------------------------------------------------------------
# The sqlite reader pool
# ---------------------------------------------------------------------------
class TestSQLiteReaderPool:
    def test_concurrent_reads_from_many_threads(self):
        db = SQLiteConnector()
        db.create_table("t", {"a": np.arange(1000), "b": np.arange(1000.0)})
        results, errors = [], []
        barrier = threading.Barrier(6)

        def read(k):
            barrier.wait()
            try:
                for _ in range(10):
                    row = db.execute_read(
                        f"SELECT SUM(a) AS s FROM t WHERE a < {100 * (k + 1)}"
                    ).first_row()
                    results.append((k, row["s"]))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for k, total in results:
            n = 100 * (k + 1)
            assert total == n * (n - 1) // 2
        # The pool is bounded by peak concurrency, not thread lifetimes.
        assert 1 <= len(db._all_readers) <= 6
        db.close()

    def test_reader_pool_reuses_connections_across_rounds(self):
        """Scheduler rounds spawn fresh threads every time; the pool must
        recycle checked-in connections instead of minting one per thread
        (the fd-leak failure mode: rounds x workers connections)."""
        db = SQLiteConnector()
        db.create_table("t", {"a": np.arange(100)})
        for _ in range(50):
            db.execute_read("SELECT COUNT(*) AS n FROM t")
        assert len(db._all_readers) == 1
        # Many short-lived threads, strictly sequential: still one conn.
        for _ in range(10):
            t = threading.Thread(
                target=lambda: db.execute_read("SELECT MAX(a) AS m FROM t")
            )
            t.start()
            t.join()
        assert len(db._all_readers) == 1
        db.close()

    def test_execute_read_funnels_writes_to_owner(self):
        db = SQLiteConnector()
        db.create_table("t", {"a": [1, 2, 3]})
        # DDL through the read entry point must still work (owner path)...
        db.execute_read("CREATE TABLE made_by_read (x INTEGER)")
        assert "made_by_read" in db.table_names()
        # ...and must not have minted a reader connection for it.
        assert len(db._all_readers) == 0
        db.close()

    def test_reads_see_owner_writes(self):
        db = SQLiteConnector()
        db.create_table("t", {"a": [1, 2, 3]})
        assert db.execute_read("SELECT COUNT(*) AS n FROM t").first_row()["n"] == 3
        db.execute("UPDATE t SET a = a + 10")
        assert (
            db.execute_read("SELECT MIN(a) AS m FROM t").first_row()["m"] == 11
        )
        db.close()

    def test_capabilities_declare_concurrent_read(self):
        assert SQLiteConnector().capabilities.concurrent_read
        assert EmbeddedConnector().capabilities.concurrent_read
        assert Capabilities().concurrent_read  # permissive default

    def test_close_is_idempotent_and_cleans_up(self, tmp_path):
        import os

        db = SQLiteConnector()
        db.create_table("t", {"a": [1]})
        db.execute_read("SELECT a FROM t")
        scratch = db._tmpdir
        assert scratch is not None and os.path.isdir(scratch)
        db.close()
        db.close()
        assert not os.path.exists(scratch)

    def test_file_backed_database_is_preserved(self, tmp_path):
        path = str(tmp_path / "keep.db")
        db = SQLiteConnector(path=path)
        db.create_table("t", {"a": [1, 2]})
        db.close()
        import os

        assert os.path.exists(path)
        again = SQLiteConnector(path=path)
        assert again.execute("SELECT COUNT(*) AS n FROM t").first_row()["n"] == 2
        again.close()
