"""Round-level checkpoint/resume (ISSUE 8).

The parity bar: a run interrupted mid-training and resumed from its
last committed checkpoint must produce a ``model_digest`` bit-identical
to the uninterrupted run — across backends and worker counts.
"""

import json

import numpy as np
import pytest

import repro
from repro.core.boosting import train_gradient_boosting
from repro.core.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    DirectoryCheckpointSink,
    MemoryCheckpointSink,
    check_resume_params,
    read_checkpoint,
    resume_training,
    write_checkpoint,
)
from repro.core.params import TrainParams
from repro.core.serialize import model_digest
from repro.exceptions import BackendExecutionError, TrainingError

from conftest import backend_matrix


def _build(conn, n=400, seed=3):
    rng = np.random.default_rng(seed)
    conn.create_table("sales", {
        "date_id": rng.integers(0, 25, n),
        "net_profit": rng.normal(size=n),
        "units": rng.normal(size=n),
    })
    conn.create_table("date", {
        "date_id": np.arange(25),
        "holiday": rng.integers(0, 2, 25).astype(np.float64),
    })
    graph = repro.JoinGraph(conn)
    graph.add_relation("sales", features=["units"], y="net_profit",
                       is_fact=True)
    graph.add_relation("date", features=["holiday"])
    graph.add_edge("sales", "date", ["date_id"])
    return graph


PARAMS = {
    "objective": "regression",
    "num_iterations": 4,
    "num_leaves": 4,
    "learning_rate": 0.3,
}


def _interrupt_after_round(conn, graph, sink, rounds, num_workers="auto"):
    """Run with checkpointing, killed by a chaos fault after ``rounds``
    committed rounds; the sink retains the last committed round."""
    with pytest.raises(BackendExecutionError):
        train_gradient_boosting(
            conn, graph, dict(PARAMS, num_workers=num_workers),
            checkpoint=sink,
        )
    payload = read_checkpoint(sink)
    assert payload is not None and payload["round"] == rounds


class TestCheckpointResumeParity:
    """Interrupted + resumed == uninterrupted, bit for bit."""

    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    @pytest.mark.parametrize("workers", [1, 4])
    def test_resume_digest_matches_uninterrupted(self, backend, workers):
        # uninterrupted reference
        clean_conn = repro.connect(backend=backend)
        clean_graph = _build(clean_conn)
        reference = train_gradient_boosting(
            clean_conn, clean_graph, dict(PARAMS, num_workers=workers)
        )
        # interrupted run: a permanent fault kills round 3's message pass
        conn = repro.connect(
            backend=backend,
            chaos="tag=message:nth=9:times=1:kind=permanent",
            retry=False,
        )
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        _interrupt_after_round(conn, graph, sink, rounds=2,
                               num_workers=workers)
        # resume on the SAME connection (the guard cleaned it up)
        resumed = resume_training(conn, graph, sink)
        assert model_digest(resumed) == model_digest(reference)
        assert len(resumed.trees) == PARAMS["num_iterations"]

    def test_resume_may_change_workers(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=9:times=1:kind=permanent",
            retry=False,
        )
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        _interrupt_after_round(conn, graph, sink, rounds=2, num_workers=1)
        resumed = resume_training(conn, graph, sink, dict(PARAMS),
                                  num_workers=4)
        clean_conn = repro.connect(backend="sqlite")
        clean_graph = _build(clean_conn)
        reference = train_gradient_boosting(clean_conn, clean_graph,
                                            dict(PARAMS))
        assert model_digest(resumed) == model_digest(reference)

    def test_directory_sink_roundtrip(self, tmp_path):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=5:times=1:kind=permanent",
            retry=False,
        )
        graph = _build(conn)
        sink = DirectoryCheckpointSink(str(tmp_path / "ckpt"))
        _interrupt_after_round(conn, graph, sink, rounds=1)
        assert sink.saves == 1
        # a fresh sink object over the same directory sees the payload —
        # that's the crash-recovery story
        resumed = resume_training(
            conn, graph, DirectoryCheckpointSink(str(tmp_path / "ckpt"))
        )
        clean_conn = repro.connect(backend="sqlite")
        reference = train_gradient_boosting(
            clean_conn, _build(clean_conn), dict(PARAMS)
        )
        assert model_digest(resumed) == model_digest(reference)

    def test_empty_sink_trains_fresh_and_checkpoints(self):
        conn = repro.connect(backend="sqlite")
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        model = resume_training(conn, graph, sink, dict(PARAMS))
        assert len(model.trees) == PARAMS["num_iterations"]
        assert sink.saves == PARAMS["num_iterations"]
        assert read_checkpoint(sink)["round"] == PARAMS["num_iterations"]

    def test_finished_checkpoint_returns_restored_model(self):
        conn = repro.connect(backend="sqlite")
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        model = train_gradient_boosting(conn, graph, dict(PARAMS),
                                        checkpoint=sink)
        # resuming a checkpoint whose round == num_iterations re-trains
        # nothing: same digest, straight from the payload
        resumed = resume_training(conn, graph, sink)
        assert model_digest(resumed) == model_digest(model)


class TestCheckpointFormat:
    def test_payload_fields(self):
        conn = repro.connect(backend="sqlite")
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        train_gradient_boosting(
            conn, graph, dict(PARAMS, num_iterations=2), checkpoint=sink
        )
        payload = json.loads(sink.payload)
        assert payload["kind"] == CHECKPOINT_KIND
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["round"] == 2
        assert payload["params"]["num_iterations"] == 2
        assert payload["model"]["kind"] == "gradient_boosting"
        assert len(payload["model"]["trees"]) == 2
        # canonical JSON: re-serializing is byte-identical
        assert json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ) == sink.payload

    def test_corrupt_payload_raises(self):
        sink = MemoryCheckpointSink()
        for bad in ("not json", '{"kind":"something-else"}',
                    '{"kind":"joinboost-checkpoint","version":99}',
                    '{"kind":"joinboost-checkpoint","version":1}'):
            sink.payload = bad
            with pytest.raises(TrainingError):
                read_checkpoint(sink)

    def test_params_mismatch_rejected(self):
        stored = TrainParams.from_dict(dict(PARAMS))
        requested = TrainParams.from_dict(dict(PARAMS, learning_rate=0.9))
        with pytest.raises(TrainingError, match="learning_rate"):
            check_resume_params(stored, requested)

    def test_num_workers_mismatch_allowed(self):
        stored = TrainParams.from_dict(dict(PARAMS, num_workers=1))
        requested = TrainParams.from_dict(dict(PARAMS, num_workers=8))
        check_resume_params(stored, requested)  # no raise

    def test_resume_with_mismatched_params_raises(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=5:times=1:kind=permanent",
            retry=False,
        )
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        _interrupt_after_round(conn, graph, sink, rounds=1)
        with pytest.raises(TrainingError, match="num_leaves"):
            resume_training(conn, graph, sink, dict(PARAMS, num_leaves=8))

    def test_write_checkpoint_atomic_on_directory(self, tmp_path):
        sink = DirectoryCheckpointSink(str(tmp_path))
        conn = repro.connect(backend="sqlite")
        graph = _build(conn)
        model = train_gradient_boosting(
            conn, graph, dict(PARAMS, num_iterations=1)
        )
        params = TrainParams.from_dict(dict(PARAMS, num_iterations=1))
        write_checkpoint(sink, model, params, 1)
        # no stray temp files left next to the checkpoint
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != sink.FILENAME]
        assert leftovers == []
        sink.clear()
        assert sink.load() is None


class TestCheckpointScope:
    """Checkpointing is defined for single-target snowflake boosting."""

    def test_multiclass_rejected(self):
        rng = np.random.default_rng(5)
        conn = repro.connect(backend="sqlite")
        conn.create_table("f", {
            "k": rng.integers(0, 10, 200),
            "label": rng.integers(0, 3, 200),
        })
        conn.create_table("d", {"k": np.arange(10),
                                "x": rng.normal(size=10)})
        graph = repro.JoinGraph(conn)
        graph.add_relation("f", y="label", is_fact=True)
        graph.add_relation("d", features=["x"])
        graph.add_edge("f", "d", ["k"])
        with pytest.raises(TrainingError, match="multiclass"):
            train_gradient_boosting(
                conn, graph,
                {"objective": "softmax", "num_class": 3,
                 "num_iterations": 2},
                checkpoint=MemoryCheckpointSink(),
            )

    def test_galaxy_rejected(self, small_imdb):
        db, graph = small_imdb
        with pytest.raises(TrainingError, match="galaxy"):
            train_gradient_boosting(
                db, graph,
                {"objective": "regression", "num_iterations": 2},
                checkpoint=MemoryCheckpointSink(),
            )


# ---------------------------------------------------------------------------
# ISSUE 9: resume under the process executor and under the sharded path
# ---------------------------------------------------------------------------
class TestProcessExecutorResume:
    def test_resume_on_process_executor_matches_uninterrupted(self):
        """Interrupted mid-round — a worker_crash fault kills (and
        recovers) a pooled split task, then a permanent statement fault
        aborts the round — resume on the process pool, digest identical."""
        clean_conn = repro.connect(backend="sqlite")
        reference = train_gradient_boosting(
            clean_conn, _build(clean_conn),
            dict(PARAMS, num_workers=4, executor="process"),
        )
        conn = repro.connect(
            backend="sqlite",
            chaos=(
                "tag=feature:nth=2:times=1:kind=worker_crash;"
                "tag=message:nth=9:times=1:kind=permanent"
            ),
            retry=False,
        )
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        with pytest.raises(BackendExecutionError):
            train_gradient_boosting(
                conn, graph,
                dict(PARAMS, num_workers=4, executor="process"),
                checkpoint=sink,
            )
        assert read_checkpoint(sink)["round"] == 2
        resumed = resume_training(conn, graph, sink)
        assert model_digest(resumed) == model_digest(reference)

    def test_resume_may_change_executor(self):
        """executor is execution-only: a thread-interrupted run may
        resume on processes without breaking digest parity."""
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=9:times=1:kind=permanent",
            retry=False,
        )
        graph = _build(conn)
        sink = MemoryCheckpointSink()
        _interrupt_after_round(conn, graph, sink, rounds=2)
        resumed = resume_training(
            conn, graph, sink, dict(PARAMS),
            num_workers=4, executor="process",
        )
        clean_conn = repro.connect(backend="sqlite")
        reference = train_gradient_boosting(
            clean_conn, _build(clean_conn), dict(PARAMS)
        )
        assert model_digest(resumed) == model_digest(reference)

    def test_executor_mismatch_allowed_by_param_check(self):
        stored = TrainParams.from_dict(dict(PARAMS, executor="thread"))
        requested = TrainParams.from_dict(dict(PARAMS, executor="process"))
        check_resume_params(stored, requested)  # no raise


class _InterruptingSink(MemoryCheckpointSink):
    """Dies right after committing round ``after`` — the driver-crash
    moment for the sharded path, whose trainer runs outside the
    chaos-connector statement stream."""

    def __init__(self, after):
        super().__init__()
        self.after = after

    def save(self, payload):
        super().save(payload)
        if self.saves == self.after:
            raise RuntimeError("driver killed after commit")


class TestShardedResume:
    PARAMS = {"num_iterations": 3, "num_leaves": 4, "learning_rate": 0.5}

    def _dataset(self):
        from repro.datasets import star_schema

        return star_schema(num_fact_rows=2000, num_dims=2, seed=7)

    def test_sharded_resume_digest_matches_uninterrupted(self):
        from repro.distributed import ClusterConfig, SimulatedCluster

        db, graph = self._dataset()
        reference, _ = SimulatedCluster(
            db, graph, "k0", ClusterConfig(num_machines=4)
        ).train_gradient_boosting(self.PARAMS)

        db2, graph2 = self._dataset()
        sink = _InterruptingSink(after=1)
        interrupted = SimulatedCluster(
            db2, graph2, "k0", ClusterConfig(num_machines=4),
            executor="process", checkpoint=sink,
        )
        with pytest.raises(RuntimeError):
            interrupted.train_gradient_boosting(self.PARAMS)
        assert read_checkpoint(sink)["round"] == 1

        sink.after = -1  # the replacement driver's sink doesn't die
        resumed_cluster = SimulatedCluster(
            db2, graph2, "k0", ClusterConfig(num_machines=4),
            executor="process", checkpoint=sink,
            chaos="tag=feature:nth=2:times=1:kind=worker_crash",
        )
        model, _ = resumed_cluster.train_gradient_boosting(self.PARAMS)
        assert model_digest(model) == model_digest(reference)
        census = resumed_cluster.census()
        # the resumed run both recovered a crashed shard and finished
        assert census["worker_crashes"] == 1
        assert census["tasks_redispatched"] == 1
        assert sink.payload is None  # completed runs clear their sink

    def test_sharded_resume_rejects_param_drift(self):
        from repro.distributed import ClusterConfig, SimulatedCluster

        db, graph = self._dataset()
        sink = _InterruptingSink(after=1)
        cluster = SimulatedCluster(
            db, graph, "k0", ClusterConfig(num_machines=2), checkpoint=sink,
        )
        with pytest.raises(RuntimeError):
            cluster.train_gradient_boosting(self.PARAMS)
        sink.after = -1
        with pytest.raises(TrainingError, match="num_leaves"):
            SimulatedCluster(
                db, graph, "k0", ClusterConfig(num_machines=2),
                checkpoint=sink,
            ).train_gradient_boosting(dict(self.PARAMS, num_leaves=8))
