"""The DuckDB tier-1 backend (ISSUE 7): mechanics, concurrency, parity.

Everything in this module needs a real ``duckdb`` package and skips
cleanly when it is absent (the CI ``backend-duckdb`` leg installs it).
The load-bearing acceptance claims: DuckDB trains tree-for-tree
identically to the embedded engine, grows **bit-identical** models
across ``num_workers`` in {1, 4} (``model_digest`` equality — the PR 5
parity contract), the scheduler actually engages on this backend
(``parallel_fallback_reason`` is None), and the PR 6 serving paths
(``sql_scores`` / ``score_by_key``) run natively.
"""

import threading

import numpy as np
import pytest

duckdb = pytest.importorskip("duckdb")

import repro
from repro.backends import DuckDBConnector
from repro.core.serialize import model_digest
from repro.datasets import favorita
from repro.exceptions import CatalogError, ExecutionError
from repro.storage.catalog import TEMP_PREFIX

from test_backends import _build_trainset, _tree_shape


# ---------------------------------------------------------------------------
# Connector mechanics
# ---------------------------------------------------------------------------
class TestDuckDBMechanics:
    def test_create_execute_roundtrip(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1, 2, 3], "b": [1.5, 2.5, 3.5]})
        result = conn.execute("SELECT a, b FROM t WHERE a <= 2")
        assert result.num_rows == 2
        np.testing.assert_array_equal(result["a"], [1, 2])
        conn.close()

    def test_integer_division_matches_embedded_semantics(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"c": [1, 1, 1], "s": [1, 2, 4]})
        row = conn.execute("SELECT SUM(s) / SUM(c) AS mean FROM t").first_row()
        assert row["mean"] == pytest.approx(7 / 3)
        conn.close()

    def test_nan_stored_as_null_and_read_back_as_nan(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"x": np.array([1.0, np.nan, 3.0])})
        assert conn.execute(
            "SELECT COUNT(*) AS n FROM t WHERE x IS NULL"
        ).first_row()["n"] == 1
        col = conn.table("t").column("x")
        assert np.isnan(col.values[1])
        assert col.is_null()[1]
        conn.close()

    def test_create_table_as_select_and_rename(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1, 2, 3]})
        conn.execute("CREATE TABLE u AS SELECT a * 2 AS a2 FROM t")
        conn.rename_table("u", "w")
        assert conn.has_table("w") and not conn.has_table("u")
        np.testing.assert_array_equal(conn.table("w").column("a2").values,
                                      [2, 4, 6])
        conn.close()

    def test_duplicate_create_and_missing_drop_raise(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"x": [1]})
        with pytest.raises(CatalogError):
            conn.create_table("t", {"x": [2]})
        conn.create_table("t", {"x": [5]}, replace=True)
        with pytest.raises(CatalogError):
            conn.drop_table("nope")
        conn.drop_table("nope", if_exists=True)
        conn.close()

    def test_replace_column_preserves_row_order(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"k": np.arange(5), "v": np.zeros(5)})
        conn.replace_column("t", "v", np.arange(5) * 1.5)
        np.testing.assert_allclose(conn.table("t").column("v").values,
                                   np.arange(5) * 1.5)
        conn.close()

    def test_replace_column_length_mismatch_raises(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"v": np.zeros(3)})
        with pytest.raises(ExecutionError):
            conn.replace_column("t", "v", np.zeros(2))
        conn.close()

    def test_replace_column_rejects_unknown_strategy(self):
        from repro.exceptions import StorageError

        conn = DuckDBConnector()
        conn.create_table("t", {"v": np.zeros(3)})
        with pytest.raises(StorageError, match="unknown update strategy"):
            conn.replace_column("t", "v", np.ones(3), strategy="teleport")
        conn.close()

    def test_temp_namespace_cleanup(self):
        conn = DuckDBConnector()
        keep = conn.temp_name("keepme")
        doomed = conn.temp_name("msg")
        conn.create_table(keep, {"x": [1]})
        conn.create_table(doomed, {"x": [1]})
        conn.create_table("user_data", {"x": [1]})
        assert conn.cleanup_temp(keep=[keep]) == 1
        assert conn.has_table(keep) and conn.has_table("user_data")
        assert not conn.has_table(doomed)
        conn.close()

    def test_profiles_record_kind_tag_and_start_stamp(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"x": [1.0]})
        conn.reset_profiles()
        conn.execute("SELECT x FROM t", tag="feature")
        conn.execute("CREATE TABLE u AS SELECT x FROM t", tag="message")
        kinds = [(p.kind, p.tag) for p in conn.profiles]
        assert kinds == [("Select", "feature"), ("CreateTableAs", "message")]
        # started stamps feed the scheduler's overlap accounting
        assert all(p.started is not None for p in conn.profiles)
        conn.close()

    def test_update_profile_reports_affected_rows(self):
        """The frontier census prices narrow label updates with
        rows_out; DuckDB reports the count as a one-row result."""
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1, 2, 3, 4]})
        conn.reset_profiles()
        conn.execute("UPDATE t SET a = a + 1 WHERE a <= 2", tag="delta")
        (profile,) = conn.profiles
        assert profile.kind == "Update"
        assert profile.rows_out == 2
        conn.close()

    def test_population_variance_semantics(self):
        """VARIANCE through the dialect is the population estimator,
        matching the embedded engine (DuckDB's bare spelling is sample)."""
        conn = DuckDBConnector()
        conn.create_table("t", {"x": [1.0, 2.0, 3.0, 4.0]})
        row = conn.execute("SELECT VARIANCE(x) AS v FROM t").first_row()
        assert row["v"] == pytest.approx(1.25)  # population, not 5/3
        conn.close()

    def test_execution_error_wraps_duckdb_errors(self):
        conn = DuckDBConnector()
        with pytest.raises(ExecutionError):
            conn.execute("SELECT * FROM missing_table")
        conn.close()


# ---------------------------------------------------------------------------
# The cursor pool (concurrent_read=True, for real)
# ---------------------------------------------------------------------------
class TestDuckDBCursorPool:
    def test_capabilities_declare_concurrent_read(self):
        conn = DuckDBConnector()
        assert conn.capabilities.concurrent_read
        conn.close()

    def test_concurrent_reads_from_many_threads(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": np.arange(1000), "b": np.arange(1000.0)})
        results, errors = [], []
        barrier = threading.Barrier(6)

        def read(k):
            barrier.wait()
            try:
                for _ in range(10):
                    row = conn.execute_read(
                        f"SELECT SUM(a) AS s FROM t WHERE a < {100 * (k + 1)}"
                    ).first_row()
                    results.append((k, row["s"]))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for k, total in results:
            n = 100 * (k + 1)
            assert total == n * (n - 1) // 2
        # The pool is bounded by peak concurrency, not thread lifetimes.
        assert 1 <= len(conn._all_readers) <= 6
        conn.close()

    def test_cursor_pool_reuses_handles_across_rounds(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": np.arange(100)})
        for _ in range(50):
            conn.execute_read("SELECT COUNT(*) AS n FROM t")
        assert len(conn._all_readers) == 1
        for _ in range(10):
            t = threading.Thread(
                target=lambda: conn.execute_read("SELECT MAX(a) AS m FROM t")
            )
            t.start()
            t.join()
        assert len(conn._all_readers) == 1
        conn.close()

    def test_execute_read_funnels_writes_to_owner(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1, 2, 3]})
        conn.execute_read("CREATE TABLE made_by_read (x INTEGER)")
        assert "made_by_read" in conn.table_names()
        assert len(conn._all_readers) == 0
        conn.close()

    def test_reads_see_owner_writes(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1, 2, 3]})
        assert conn.execute_read(
            "SELECT COUNT(*) AS n FROM t"
        ).first_row()["n"] == 3
        conn.execute("UPDATE t SET a = a + 10")
        assert conn.execute_read(
            "SELECT MIN(a) AS m FROM t"
        ).first_row()["m"] == 11
        conn.close()

    def test_close_is_idempotent(self):
        conn = DuckDBConnector()
        conn.create_table("t", {"a": [1]})
        conn.execute_read("SELECT a FROM t")
        conn.close()
        conn.close()


# ---------------------------------------------------------------------------
# Training: the PR 5 parity contract + the scheduler actually engaging
# ---------------------------------------------------------------------------
class TestDuckDBTraining:
    def test_worker_parity_bit_identical(self):
        """num_workers=4 must grow the *same bits* as num_workers=1 —
        model_digest equality, not approximate rmse."""
        digests = {}
        for workers in (1, 4):
            db, graph = favorita(
                db=DuckDBConnector(), num_fact_rows=2500, num_extra_features=3
            )
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3,
                 "num_workers": workers},
            )
            census = model.frontier_census
            if workers == 4:
                assert census["parallel_rounds"] > 0
                assert census["parallel_fallback_reason"] is None
            else:
                assert census["parallel_rounds"] == 0
                assert "num_workers=1" in census["parallel_fallback_reason"]
            digests[workers] = model_digest(model)
            db.close()
        assert digests[1] == digests[4]

    def test_incremental_frontier_state_engages(self):
        """The narrow-update capability is real: incremental labels run
        (no rebuild veto) and delta updates fire."""
        db, graph = favorita(
            db=DuckDBConnector(), num_fact_rows=2000, num_extra_features=2
        )
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
             "frontier_state": "incremental"},
        )
        census = model.frontier_census
        assert census["incremental_rounds"] > 0
        assert census["incremental_veto"] is None
        assert census["delta_label_updates"] > 0
        db.close()

    def test_prepare_training_is_idempotent_and_recorded(self):
        db, graph = favorita(
            db=DuckDBConnector(), num_fact_rows=800, num_extra_features=2
        )
        first = db.prepare_training(graph)
        indexed_after_first = set(db._indexed)
        second = db.prepare_training(graph)
        assert first >= 0.0 and second >= 0.0
        assert db._indexed == indexed_after_first
        assert db.index_seconds >= first
        tags = {p.tag for p in db.profiles}
        assert "index" in tags
        db.close()

    def test_training_leaves_no_temp_tables(self):
        train_set = _build_trainset(repro.connect(backend="duckdb"))
        repro.train(
            {"objective": "regression", "num_iterations": 2, "num_leaves": 4},
            train_set,
        )
        conn = train_set.db
        leftovers = [t for t in conn.table_names()
                     if t.startswith(TEMP_PREFIX)]
        assert leftovers == []

    def test_random_forest_trains_on_duckdb(self):
        train_set = _build_trainset(repro.connect(backend="duckdb"))
        model = repro.train(
            {"boosting_type": "rf", "num_iterations": 2, "num_leaves": 4,
             "subsample": 0.5, "min_data_in_leaf": 2},
            train_set,
        )
        assert len(model.trees) == 2
        assert np.isfinite(repro.evaluate_rmse(model, train_set))


# ---------------------------------------------------------------------------
# Serving (PR 6): compiled, SQL and semi-join scoring run natively
# ---------------------------------------------------------------------------
class TestDuckDBServing:
    def _service(self):
        train_set = _build_trainset(repro.connect(backend="duckdb"))
        model = repro.train(
            {"objective": "regression", "num_iterations": 3,
             "num_leaves": 5, "min_data_in_leaf": 2},
            train_set,
        )
        service = repro.PredictionService(train_set.db, train_set.graph)
        service.deploy(model)
        return train_set, model, service

    def test_sql_scores_match_compiled_and_recursive(self):
        train_set, model, service = self._service()
        compiled = service.score_all()
        in_db = service.score_sql()
        reference = repro.predict(model, train_set)
        np.testing.assert_allclose(compiled, reference, atol=1e-9)
        np.testing.assert_allclose(in_db, reference, atol=1e-9)

    def test_score_by_key_matches_full_scan(self):
        train_set, model, service = self._service()
        full = service.score_all()
        dates = train_set.db.table("sales").column("date_id").values
        target = int(dates[0])
        rows = service.score_key({"date_id": target})
        mask = dates == target
        assert len(rows) == int(mask.sum())
        np.testing.assert_allclose(
            np.sort(np.asarray(rows, dtype=float)),
            np.sort(full[mask]), atol=1e-9,
        )
