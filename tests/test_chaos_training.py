"""Chaos engineering for training (ISSUE 8).

The acceptance bar: training under injected transient faults completes
with a retry census > 0 and a model digest bit-identical to the
fault-free run, across backends and worker counts; a chaos-driven
mid-round *permanent* failure leaves zero ``jb_*`` temps or minted leaf
columns behind, and the connection trains again cleanly.
"""

import numpy as np
import pytest

import repro
from repro.backends.chaos import ChaosConnector, FaultPlan, FaultRule
from repro.core.serialize import model_digest
from repro.core.session import side_state_audit
from repro.exceptions import (
    BackendError,
    BackendExecutionError,
    TransientBackendError,
)

from conftest import backend_matrix


def _build_trainset(conn, n=500, seed=7):
    rng = np.random.default_rng(seed)
    conn.create_table("sales", {
        "date_id": rng.integers(0, 30, n),
        "item_id": rng.integers(0, 20, n),
        "net_profit": rng.normal(size=n),
    })
    conn.create_table("date", {
        "date_id": np.arange(30),
        "holiday": rng.integers(0, 2, 30).astype(np.float64),
    })
    conn.create_table("item", {
        "item_id": np.arange(20),
        "price": rng.normal(size=20),
    })
    train_set = repro.join_graph(conn)
    train_set.add_node("sales", y="net_profit")
    train_set.add_node("date", X=["holiday"])
    train_set.add_node("item", X=["price"])
    train_set.add_edge("sales", "date", ["date_id"])
    train_set.add_edge("sales", "item", ["item_id"])
    return train_set


PARAMS = {
    "objective": "regression",
    "num_iterations": 3,
    "num_leaves": 4,
    "learning_rate": 0.3,
}


def _train_digest(backend, num_workers, chaos=None):
    conn = repro.connect(backend=backend, chaos=chaos)
    train_set = _build_trainset(conn)
    model = repro.train(
        dict(PARAMS, num_workers=num_workers), train_set
    )
    return model_digest(model), conn


# ---------------------------------------------------------------------------
# Fault-plan parsing and mechanics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_from_spec_parses_rules(self):
        plan = FaultPlan.from_spec(
            "tag=message:nth=3:times=2:kind=transient;"
            "lift:kind=latency:delay=0.01"
        )
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert first.match == "message" and first.nth == 3
        assert first.times == 2 and first.kind == "transient"
        assert second.match == "lift" and second.kind == "latency"
        assert second.delay == pytest.approx(0.01)

    def test_bad_specs_raise(self):
        for spec in ("", "kind=teleport", "nth=0", "times=-1",
                     "bogus_key=1:kind=transient"):
            with pytest.raises(BackendError):
                FaultPlan.from_spec(spec)

    def test_nth_window_fires_exactly_times(self):
        plan = FaultPlan([FaultRule(match="", nth=2, times=2)])
        fired = [plan.next_fault("t", "SELECT 1", read=False)
                 for _ in range(5)]
        assert [f is not None for f in fired] == [
            False, True, True, False, False
        ]

    def test_cursor_rules_only_fire_on_reads(self):
        plan = FaultPlan([FaultRule(match="", nth=1, times=5, kind="cursor")])
        assert plan.next_fault("t", "UPDATE x", read=False) is None
        assert plan.next_fault("t", "SELECT 1", read=True) is not None


class TestChaosConnector:
    def test_injects_before_inner_call(self):
        """The fault fires before the backend sees the statement, so a
        retried statement never double-applies side effects."""
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=ins:nth=1:times=1:kind=transient",
            retry=False,
        )
        conn.create_table("t", {"a": [0.0]})
        with pytest.raises(TransientBackendError):
            conn.execute("UPDATE t SET a = a + 1", tag="ins")
        # the UPDATE never reached sqlite
        assert conn.execute_read("SELECT a FROM t").first_row()["a"] == 0.0
        # retrying by hand succeeds exactly once
        conn.execute("UPDATE t SET a = a + 1", tag="ins")
        assert conn.execute_read("SELECT a FROM t").first_row()["a"] == 1.0

    def test_permanent_fault_not_retried(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=doom:nth=1:times=1:kind=permanent",
        )
        conn.create_table("t", {"a": [1.0]})
        with pytest.raises(BackendExecutionError) as excinfo:
            conn.execute_read("SELECT a FROM t", tag="doom")
        assert not isinstance(excinfo.value, TransientBackendError)
        assert conn.retry_census.snapshot()["retries"] == 0

    def test_latency_fault_still_returns_result(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=slow:nth=1:times=1:kind=latency:delay=0.005",
        )
        conn.create_table("t", {"a": [1.0, 2.0]})
        result = conn.execute_read("SELECT SUM(a) AS s FROM t", tag="slow")
        assert result.first_row()["s"] == pytest.approx(3.0)
        assert conn.chaos_census.snapshot()["latency"] == 1

    def test_census_counts_by_kind(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=r:nth=1:times=2:kind=cursor",
        )
        conn.create_table("t", {"a": [1.0]})
        for _ in range(2):
            conn.execute_read("SELECT a FROM t", tag="r")
        snap = conn.chaos_census.snapshot()
        assert snap["cursor"] == 2 and snap["total"] == 2

    def test_env_var_activates_chaos(self, monkeypatch):
        monkeypatch.setenv(
            "JOINBOOST_CHAOS", "tag=env:nth=1:times=1:kind=transient"
        )
        conn = repro.connect(backend="sqlite")
        # retry auto-enabled with chaos: the fault is absorbed
        conn.create_table("t", {"a": [1.0]})
        assert conn.execute_read(
            "SELECT a FROM t", tag="env"
        ).first_row()["a"] == 1.0
        assert conn.retry_census.snapshot()["retries"] == 1
        assert conn.chaos_census.snapshot()["total"] == 1

    def test_proxy_preserves_connector_surface(self):
        inner = repro.connect(backend="sqlite", retry=False)
        chaotic = ChaosConnector(inner, FaultPlan([]))
        assert chaotic.dialect == inner.dialect
        assert chaotic.capabilities == inner.capabilities
        chaotic.create_table("t", {"a": [1.0]})
        assert chaotic.has_table("t")
        assert chaotic.table("t").num_rows() == 1


# ---------------------------------------------------------------------------
# The parity matrix: chaos training == fault-free training, bit for bit
# ---------------------------------------------------------------------------
class TestChaosParity:
    #: fail the 2nd and 3rd message-passing statements, then every 5th
    #: frontier query once — enough pressure to exercise both the
    #: connector retry path and the scheduler retry path
    CHAOS = "tag=message:nth=2:times=2:kind=transient;" \
            "tag=:nth=12:times=1:kind=transient"

    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    @pytest.mark.parametrize("workers", [1, 4])
    def test_digest_matches_fault_free_run(self, backend, workers):
        clean_digest, _ = _train_digest(backend, workers)
        chaos_digest, conn = _train_digest(backend, workers, chaos=self.CHAOS)
        assert chaos_digest == clean_digest
        retry = conn.retry_census.snapshot()
        chaos = conn.chaos_census.snapshot()
        assert chaos["total"] > 0, "chaos plan never fired"
        assert retry["retries"] > 0, "faults were injected but never retried"
        assert retry["exhausted"] == 0

    def test_census_surfaced_in_frontier_census(self):
        conn = repro.connect(backend="sqlite", chaos=self.CHAOS)
        train_set = _build_trainset(conn)
        model = repro.train(dict(PARAMS), train_set)
        census = model.frontier_census
        assert census["retries"] > 0
        assert census["chaos_injected"] > 0
        assert census["retry_exhausted"] == 0


# ---------------------------------------------------------------------------
# Guaranteed side-state cleanup after chaos-driven failures
# ---------------------------------------------------------------------------
class TestSideStateCleanup:
    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    def test_permanent_midtraining_failure_leaves_no_side_state(
        self, backend
    ):
        """A permanent fault mid-training aborts the run, but the guard
        drops every jb_* temp and minted column before re-raising."""
        conn = repro.connect(
            backend=backend,
            chaos="tag=message:nth=3:times=1:kind=permanent",
            retry=False,
        )
        train_set = _build_trainset(conn)
        before = set(conn.table_names())
        with pytest.raises(BackendExecutionError):
            repro.train(dict(PARAMS), train_set)
        audit = side_state_audit(conn)
        assert audit["clean"], f"side state leaked: {audit}"
        # ignore engine-internal catalogs (sqlite's ANALYZE stats)
        after = {
            t for t in conn.table_names()
            if not t.lower().startswith("sqlite_")
        }
        assert after == before

    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    def test_connection_retrainable_after_failure(self, backend):
        """After a guarded failure the same connection trains again and
        produces the same digest a never-failed connection would."""
        conn = repro.connect(
            backend=backend,
            chaos="tag=message:nth=3:times=1:kind=permanent",
            retry=False,
        )
        train_set = _build_trainset(conn)
        with pytest.raises(BackendExecutionError):
            repro.train(dict(PARAMS), train_set)
        # the fault plan is spent (times=1): the retrain runs clean
        model = repro.train(dict(PARAMS), train_set)
        clean_digest, _ = _train_digest(backend, "auto")
        assert model_digest(model) == clean_digest

    def test_exhausted_retries_still_clean_up(self):
        """Transient faults that outlast the retry budget abort like a
        permanent failure — and must clean up just the same."""
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=2:times=50:kind=transient",
        )
        train_set = _build_trainset(conn)
        with pytest.raises(TransientBackendError) as excinfo:
            repro.train(dict(PARAMS), train_set)
        assert getattr(excinfo.value, "attempts", 0) >= 1
        assert conn.retry_census.snapshot()["exhausted"] >= 1
        assert side_state_audit(conn)["clean"]

    def test_decision_tree_path_guarded_too(self):
        conn = repro.connect(
            backend="sqlite",
            chaos="tag=message:nth=2:times=1:kind=permanent",
            retry=False,
        )
        train_set = _build_trainset(conn)
        with pytest.raises(BackendExecutionError):
            repro.train(
                {"model": "tree", "num_iterations": 1, "num_leaves": 4},
                train_set,
            )
        assert side_state_audit(conn)["clean"]


# ---------------------------------------------------------------------------
# Spec validation (ISSUE 9 satellite: malformed specs raise a ValueError
# naming the offending rule) and task-scoped fault kinds
# ---------------------------------------------------------------------------
class TestChaosSpecErrors:
    def test_spec_error_is_both_backend_error_and_value_error(self):
        from repro.exceptions import ChaosSpecError

        assert issubclass(ChaosSpecError, BackendError)
        assert issubclass(ChaosSpecError, ValueError)

    def test_unknown_key_names_the_rule(self):
        with pytest.raises(ValueError, match=r"bogus_key.*kind=transient"):
            FaultPlan.from_spec(
                "tag=message:nth=1;bogus_key=1:kind=transient"
            )

    def test_non_integer_nth_names_the_rule(self):
        with pytest.raises(ValueError, match=r"tag=message:nth=soon"):
            FaultPlan.from_spec("tag=message:nth=soon")

    def test_unknown_kind_names_the_rule(self):
        with pytest.raises(ValueError, match=r"kind=teleport"):
            FaultPlan.from_spec("tag=message:kind=teleport")

    def test_bad_field_names_the_field_and_rule(self):
        with pytest.raises(ValueError, match=r"oops.*tag=message"):
            FaultPlan.from_spec("tag=message:oops")

    def test_empty_spec_raises(self):
        with pytest.raises(ValueError, match="contains no rules"):
            FaultPlan.from_spec(" ; ")

    def test_connect_surfaces_spec_error(self):
        with pytest.raises(ValueError, match="kind=warp"):
            repro.connect(backend="sqlite", chaos="tag=x:kind=warp")


class TestTaskFaultKinds:
    def test_task_kinds_parse(self):
        from repro.backends.chaos import TASK_FAULT_KINDS

        plan = FaultPlan.from_spec(
            "tag=feature:nth=2:kind=worker_crash;tag=read:kind=stall"
        )
        assert [r.kind for r in plan.rules] == ["worker_crash", "stall"]
        assert set(r.kind for r in plan.rules) == set(TASK_FAULT_KINDS)

    def test_statement_calls_do_not_advance_task_counters(self):
        """A worker_crash rule counts dispatched *tasks*; statement
        traffic must neither fire it nor burn its ordinal."""
        plan = FaultPlan.from_spec("tag=feature:nth=1:kind=worker_crash")
        for _ in range(5):
            assert plan.next_fault("feature", "SELECT 1", read=True) is None
        # the first *task* still fires
        rule = plan.next_task_fault("feature:sales")
        assert rule is not None and rule.kind == "worker_crash"

    def test_task_faults_fire_on_nth_matching_task(self):
        plan = FaultPlan.from_spec("tag=feature:nth=3:times=2:kind=stall")
        fired = [plan.next_task_fault("feature:r") is not None
                 for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_statement_kinds_invisible_to_task_dispatch(self):
        plan = FaultPlan.from_spec("tag=feature:nth=1:times=9:kind=transient")
        assert plan.next_task_fault("feature:r") is None

    def test_task_fault_directive_records_census(self):
        from repro.backends.chaos import task_fault_directive

        conn = repro.connect(
            backend="sqlite",
            chaos="tag=feature:nth=1:kind=worker_crash",
        )
        assert task_fault_directive(conn, "feature:sales") == "worker_crash"
        assert conn.chaos_census.snapshot()["worker_crash"] == 1
        # window exhausted: subsequent tasks run clean
        assert task_fault_directive(conn, "feature:sales") is None

    def test_task_fault_directive_none_without_plan(self):
        from repro.backends.chaos import task_fault_directive

        conn = repro.connect(backend="sqlite")
        assert task_fault_directive(conn, "feature:sales") is None
