"""Codec round-trip and size tests, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.storage.compression import DictionaryCodec, PlainCodec, RLECodec, codec_for


class TestRLE:
    def test_round_trip(self):
        codec = RLECodec()
        values = np.array([1, 1, 1, 2, 2, 3])
        assert list(codec.decode(codec.encode(values))) == [1, 1, 1, 2, 2, 3]

    def test_compresses_runs(self):
        codec = RLECodec()
        values = np.repeat(np.arange(10), 1000)
        payload = codec.encode(values)
        assert codec.encoded_nbytes(payload) < values.nbytes / 10

    def test_empty(self):
        codec = RLECodec()
        assert len(codec.decode(codec.encode(np.zeros(0)))) == 0

    def test_nan_runs_preserved(self):
        codec = RLECodec()
        values = np.array([np.nan, np.nan, 1.0])
        out = codec.decode(codec.encode(values))
        assert np.isnan(out[0]) and np.isnan(out[1]) and out[2] == 1.0

    @given(st.lists(st.integers(-5, 5), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, data):
        codec = RLECodec()
        values = np.array(data, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)


class TestDictionary:
    def test_round_trip_ints(self):
        codec = DictionaryCodec()
        values = np.array([5, 5, 7, 5, 9])
        assert list(codec.decode(codec.encode(values))) == [5, 5, 7, 5, 9]

    def test_narrow_codes_for_small_dictionaries(self):
        codec = DictionaryCodec()
        values = np.tile(np.arange(10), 100)
        codes, dictionary = codec.encode(values)
        assert codes.dtype == np.uint8
        assert len(dictionary) == 10

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, data):
        codec = DictionaryCodec()
        values = np.array(data, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)


class TestRegistry:
    def test_codec_for_known(self):
        assert isinstance(codec_for("plain"), PlainCodec)
        assert isinstance(codec_for("rle"), RLECodec)
        assert isinstance(codec_for("dict"), DictionaryCodec)

    def test_codec_for_unknown(self):
        with pytest.raises(StorageError):
            codec_for("zstd")
