"""Residual-update correctness: every strategy produces the same state,
semi-join translation matches direct evaluation, and the naive U-join
(Section 4.2.1) agrees with the optimized paths."""

import numpy as np
import pytest

import repro
from repro.core.residual import ResidualUpdater, leaf_fact_condition
from repro.core.split import GradientCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.params import TrainParams
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import Predicate
from repro.semiring.gradient import GradientSemiRing
from repro.semiring.losses import get_loss


def trained_setup(small_star):
    """Lift a gradient fact table and train one tree over it."""
    db, graph = small_star
    ring = GradientSemiRing()
    factorizer = Factorizer(db, graph, ring)
    y = graph.target_column
    factorizer.lift(ring.lift_pair_sql("1", f"(0.0 - t.{y})"))
    params = TrainParams.from_dict({"num_leaves": 4})
    trainer = DecisionTreeTrainer(
        db, graph, factorizer, GradientCriterion(), params
    )
    tree = trainer.train()
    return db, graph, factorizer, tree


class TestLeafFactCondition:
    def test_fact_local_predicate(self, small_star):
        db, graph = small_star
        condition = leaf_fact_condition(
            graph, "fact", {"fact": (Predicate("local_feat", "<=", 10),)}, "t"
        )
        assert condition == "t.local_feat <= 10"

    def test_dimension_predicate_becomes_semi_join(self, small_star):
        db, graph = small_star
        condition = leaf_fact_condition(
            graph, "fact", {"dim0": (Predicate("dfeat0", ">", 0),)}, "t"
        )
        assert "t.k0 IN (SELECT k0 FROM dim0 WHERE dfeat0 > 0" in condition

    def test_two_hop_nesting(self, small_favorita):
        db, graph = small_favorita
        condition = leaf_fact_condition(
            graph, "sales", {"oil": (Predicate("f_oil", ">", 500),)}, "t"
        )
        # oil hangs off dates: sales.date_id IN (dates ... IN (oil ...))
        assert condition.count("IN (SELECT") == 2

    def test_semi_join_selects_same_rows(self, small_star):
        db, graph = small_star
        predicate = Predicate("dfeat0", ">", 0)
        condition = leaf_fact_condition(
            graph, "fact", {"dim0": (predicate,)}, "fact"
        )
        via_semijoin = db.execute(
            f"SELECT COUNT(*) AS n FROM fact WHERE {condition}"
        ).scalar()
        via_join = db.execute(
            "SELECT COUNT(*) AS n FROM fact JOIN dim0 ON fact.k0 = dim0.k0 "
            "WHERE dfeat0 > 0"
        ).scalar()
        assert via_semijoin == via_join


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", ["update", "create", "swap", "naive"])
    def test_additive_strategies_agree(self, small_star, strategy):
        db, graph, factorizer, tree = trained_setup(small_star)
        fact_table = factorizer.lifted["fact"]
        baseline = db.table(fact_table).column("g").values.copy()

        updater = ResidualUpdater(
            db, graph, "fact", fact_table, get_loss("l2"), strategy=strategy
        )
        updater.apply_additive(tree, learning_rate=0.5, component="g")

        # Reference: shift each row's g by 0.5 * its leaf value, computed
        # through direct (non-semi-join) prediction.
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        expected = baseline + 0.5 * tree.predict_arrays(frame)
        got = db.table(fact_table).column("g").values
        assert np.allclose(np.sort(got), np.sort(expected))
        factorizer.cleanup()

    def test_general_loss_update_recomputes_gradients(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph,
            {"objective": "huber", "huber_delta": 5.0, "num_iterations": 3,
             "num_leaves": 4, "learning_rate": 0.3},
        )
        assert len(model.trees) == 3

    def test_update_strategy_matches_swap_through_boosting(self, small_star):
        db, graph = small_star
        swap = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 3, "num_leaves": 4, "update_strategy": "swap"},
        )
        update = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 3, "num_leaves": 4, "update_strategy": "update"},
        )
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        assert np.allclose(
            swap.predict_arrays(frame), update.predict_arrays(frame)
        )


class TestBoostingMatchesSingleTableBoosting:
    def test_rmse_matches_exact_reference(self, small_star):
        """Factorized boosting == exact single-table boosting, tree by tree."""
        db, graph = small_star
        from repro.baselines.exactgbm import ExactGradientBoosting
        from repro.baselines.export import load_feature_matrix
        from repro.core.predict import feature_frame

        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 5, "num_leaves": 4, "learning_rate": 0.3,
             "min_data_in_leaf": 2},
        )
        X, y, names = load_feature_matrix(db, graph)
        reference = ExactGradientBoosting(
            num_iterations=5, num_leaves=4, learning_rate=0.3,
            min_child_samples=2,
        ).fit(X, y)
        frame = feature_frame(db, graph)
        ours = model.predict_arrays(frame)
        theirs = reference.predict(X)
        assert np.allclose(np.sort(ours), np.sort(theirs), atol=1e-8)
