"""Random forests and join sampling (Section 5.5.2)."""

import numpy as np
import pytest

import repro
from repro.core.predict import feature_frame, rmse_on_join
from repro.factorize.sampling import ancestral_sample, sample_fact_table
from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.storage.column import Column


class TestRandomForest:
    def test_regression_beats_constant(self, small_star):
        db, graph = small_star
        forest = repro.train_random_forest(
            db, graph,
            {"num_iterations": 8, "num_leaves": 8, "subsample": 0.5,
             "feature_fraction": 0.8, "min_data_in_leaf": 3, "seed": 1},
        )
        y = db.table("fact").column("target").values
        assert rmse_on_join(db, graph, forest) < 0.7 * y.std()

    def test_tree_count(self, tiny_star):
        db, graph = tiny_star
        forest = repro.train_random_forest(
            db, graph, {"num_iterations": 5, "num_leaves": 4, "subsample": 0.8},
        )
        assert len(forest.trees) == 5
        assert len(forest.history) == 5

    def test_prediction_is_average(self, tiny_star):
        db, graph = tiny_star
        forest = repro.train_random_forest(
            db, graph, {"num_iterations": 3, "num_leaves": 4, "subsample": 0.9},
        )
        frame = feature_frame(db, graph)
        stacked = np.stack([t.predict_arrays(frame) for t in forest.trees])
        assert np.allclose(forest.predict_arrays(frame), stacked.mean(axis=0))

    def test_classification_votes(self, tiny_star):
        db, graph = tiny_star
        table = db.table("fact")
        y = table.column("target").values
        labels = (y > np.median(y)).astype(np.int64)
        table.set_column(Column("target", labels))
        forest = repro.train_random_forest(
            db, graph,
            {"objective": "multiclass", "num_class": 2, "num_iterations": 5,
             "num_leaves": 4, "subsample": 0.8, "seed": 2},
        )
        frame = feature_frame(db, graph)
        accuracy = (forest.predict_arrays(frame) == labels).mean()
        assert accuracy > 0.7

    def test_seeds_reproduce(self, tiny_star):
        db, graph = tiny_star
        a = repro.train_random_forest(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "subsample": 0.5, "seed": 7},
        )
        b = repro.train_random_forest(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "subsample": 0.5, "seed": 7},
        )
        frame = feature_frame(db, graph)
        assert np.allclose(a.predict_arrays(frame), b.predict_arrays(frame))

    def test_temp_tables_cleaned(self, tiny_star):
        db, graph = tiny_star
        repro.train_random_forest(
            db, graph, {"num_iterations": 2, "num_leaves": 4, "subsample": 0.5},
        )
        assert db.catalog.temp_names() == []


class TestFactTableSampling:
    def test_fraction_respected(self, small_star):
        db, graph = small_star
        rng = np.random.default_rng(0)
        indexes = sample_fact_table(db, "fact", 0.25, rng)
        assert len(indexes) == round(0.25 * db.table("fact").num_rows())
        assert len(set(indexes.tolist())) == len(indexes)  # without replacement

    def test_small_fraction_floors_to_one(self, tiny_star):
        db, graph = tiny_star
        indexes = sample_fact_table(db, "fact", 1e-9)
        assert len(indexes) == 1


class TestAncestralSampling:
    def make_skewed_graph(self):
        """dim key 0 joins 3 fact rows, key 1 joins 1: sampling dim rows
        uniformly would be wrong; ancestral sampling must weight 3:1."""
        db = Database()
        db.create_table("fact", {"k": [0, 0, 0, 1], "yv": [1.0, 2.0, 3.0, 4.0]})
        db.create_table("dim", {"k": [0, 1], "feat": [10.0, 20.0]})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["feat"])
        graph.add_edge("fact", "dim", ["k"])
        return db, graph

    def test_root_weighting(self):
        db, graph = self.make_skewed_graph()
        rng = np.random.default_rng(0)
        draws = ancestral_sample(db, graph, 4000, rng, root="dim")
        keys = db.table("dim").column("k").values[draws["dim"]]
        frac_zero = (keys == 0).mean()
        assert frac_zero == pytest.approx(0.75, abs=0.03)

    def test_uniform_over_join_tuples(self):
        db, graph = self.make_skewed_graph()
        rng = np.random.default_rng(1)
        draws = ancestral_sample(db, graph, 6000, rng, root="dim")
        fact_rows = draws["fact"]
        counts = np.bincount(fact_rows, minlength=4) / len(fact_rows)
        assert np.allclose(counts, 0.25, atol=0.03)

    def test_samples_always_join(self, small_star):
        db, graph = small_star
        rng = np.random.default_rng(2)
        draws = ancestral_sample(db, graph, 50, rng)
        fact_keys = db.table("fact").column("k0").values[draws["fact"]]
        dim_keys = db.table("dim0").column("k0").values[draws["dim0"]]
        assert np.array_equal(fact_keys, dim_keys)
