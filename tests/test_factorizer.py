"""Factorizer tests: messages, caching, absorption — and the central
property that factorized aggregates equal aggregates over the
materialized join, on randomized schemas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import Predicate
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


class TestPaperExample:
    """Figure 1 numbers, verbatim."""

    def test_totals(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing(include_q=True)
        )
        factorizer.lift()
        totals = factorizer.totals()
        assert (totals["c"], totals["s"], totals["q"]) == (8, 16, 36)
        # variance = Q - S²/C = 36 - 256/8 = 4
        assert totals["q"] - totals["s"] ** 2 / totals["c"] == pytest.approx(4.0)

    def test_group_by_d(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing(include_q=True)
        )
        factorizer.lift()
        result = factorizer.absorb("t", ["d"])
        rows = {
            int(d): (c, s, q)
            for d, c, s, q in zip(result["d"], result["c"], result["s"], result["q"])
        }
        assert rows[1] == (2, 5, 13)   # Figure 1c/1d
        assert rows[2] == (6, 11, 23)

    def test_group_by_c(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing(include_q=True)
        )
        factorizer.lift()
        result = factorizer.absorb("s", ["cc"])
        rows = {
            int(v): (c, s) for v, c, s in zip(result["cc"], result["c"], result["s"])
        }
        assert rows[2] == (4, 10)
        assert rows[1] == (2, 3)
        assert rows[3] == (2, 3)


class TestMessageSharing:
    def test_cache_hits_across_roots(self, paper_example_db, paper_example_graph):
        """Example 3: aggregating by C then by D reuses m_{R->S}."""
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing()
        )
        factorizer.lift()
        factorizer.absorb("s", ["cc"])
        misses_after_first = factorizer.cache.misses
        factorizer.absorb("t", ["d"])
        assert factorizer.cache.hits >= 1
        # Only the new direction was materialized.
        assert factorizer.cache.misses > misses_after_first

    def test_predicate_changes_invalidate_only_affected_side(
        self, paper_example_db, paper_example_graph
    ):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing()
        )
        factorizer.lift()
        factorizer.absorb("t", ["d"])
        executions = factorizer.message_executions
        # Predicate on T: the R->S message (T not on its side) is reused.
        factorizer.absorb(
            "t", ["d"], predicates={"t": (Predicate("d", ">", 1),)}
        )
        assert factorizer.message_executions == executions  # all sides cached

    def test_invalidate_for_relation(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing()
        )
        factorizer.lift()
        factorizer.absorb("t", ["d"])
        dropped = factorizer.invalidate_for_relation("r")
        assert dropped >= 1

    def test_disabled_cache_recomputes(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing(),
            cache_enabled=False,
        )
        factorizer.lift()
        factorizer.absorb("t", ["d"])
        first = factorizer.message_executions
        factorizer.absorb("t", ["d"])
        assert factorizer.message_executions == 2 * first

    def test_cleanup_drops_temporaries(self, paper_example_db, paper_example_graph):
        factorizer = Factorizer(
            paper_example_db, paper_example_graph, VarianceSemiRing()
        )
        factorizer.lift()
        factorizer.absorb("t", ["d"])
        factorizer.cleanup()
        assert paper_example_db.catalog.temp_names() == []


class TestIdentityMessages:
    def test_unfiltered_unique_dimension_message_dropped(self, small_star):
        db, graph = small_star
        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        info = factorizer.message("dim0", "fact", {})
        assert info is None  # identity message (Appendix D)

    def test_filtered_dimension_message_materializes(self, small_star):
        db, graph = small_star
        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        info = factorizer.message(
            "dim0", "fact", {"dim0": (Predicate("dfeat0", ">", 0),)}
        )
        assert info is not None and info.kind == "count"

    def test_without_ri_assumption_messages_materialize(self, small_star):
        db, graph = small_star
        factorizer = Factorizer(db, graph, VarianceSemiRing(), assume_ri=False)
        factorizer.lift()
        assert factorizer.message("dim0", "fact", {}) is not None


# ---------------------------------------------------------------------------
# Property: factorized == materialized over random star schemas
# ---------------------------------------------------------------------------
@st.composite
def random_star(draw):
    seed = draw(st.integers(0, 10_000))
    num_dims = draw(st.integers(1, 3))
    n = draw(st.integers(5, 60))
    dim_size = draw(st.integers(2, 8))
    return seed, num_dims, n, dim_size


@given(random_star())
@settings(max_examples=25, deadline=None)
def test_factorized_equals_materialized(config):
    seed, num_dims, n, dim_size = config
    rng = np.random.default_rng(seed)
    db = Database()
    fact = {"yv": rng.normal(size=n)}
    for j in range(num_dims):
        fact[f"k{j}"] = rng.integers(0, dim_size, n)
    db.create_table("fact", fact)
    graph = JoinGraph(db)
    graph.add_relation("fact", y="yv")
    join_parts = []
    for j in range(num_dims):
        db.create_table(
            f"dim{j}",
            {f"k{j}": np.arange(dim_size), f"a{j}": rng.integers(0, 3, dim_size)},
        )
        graph.add_relation(f"dim{j}", features=[f"a{j}"])
        graph.add_edge("fact", f"dim{j}", [f"k{j}"])
        join_parts.append(f"JOIN dim{j} ON fact.k{j} = dim{j}.k{j}")

    factorizer = Factorizer(db, graph, VarianceSemiRing(include_q=True))
    factorizer.lift()

    # Totals.
    totals = factorizer.totals()
    reference = db.execute(
        "SELECT COUNT(*) AS c, SUM(yv) AS s, SUM(yv * yv) AS q "
        f"FROM fact {' '.join(join_parts)}"
    ).first_row()
    assert totals["c"] == pytest.approx(float(reference["c"]))
    assert totals["s"] == pytest.approx(float(reference["s"] or 0.0), abs=1e-8)
    assert totals["q"] == pytest.approx(float(reference["q"] or 0.0), abs=1e-8)

    # Group-by each dimension attribute.
    for j in range(num_dims):
        factorized = factorizer.absorb(f"dim{j}", [f"a{j}"])
        reference = db.execute(
            f"SELECT a{j} AS g, COUNT(*) AS c, SUM(yv) AS s "
            f"FROM fact {' '.join(join_parts)} GROUP BY a{j} ORDER BY a{j}"
        )
        got = {
            int(g): (c, s)
            for g, c, s in zip(factorized[f"a{j}"], factorized["c"], factorized["s"])
        }
        for g, c, s in zip(reference["g"], reference["c"], reference["s"]):
            assert got[int(g)][0] == pytest.approx(float(c))
            assert got[int(g)][1] == pytest.approx(float(s), abs=1e-8)


def test_factorized_with_predicates_equals_materialized(small_star):
    db, graph = small_star
    factorizer = Factorizer(db, graph, VarianceSemiRing())
    factorizer.lift()
    predicates = {
        "dim0": (Predicate("dfeat0", ">", 0),),
        "fact": (Predicate("local_feat", "<=", 50),),
    }
    totals = factorizer.totals(predicates)
    reference = db.execute(
        "SELECT COUNT(*) AS c, SUM(target) AS s FROM fact "
        "JOIN dim0 ON fact.k0 = dim0.k0 "
        "JOIN dim1 ON fact.k1 = dim1.k1 "
        "JOIN dim2 ON fact.k2 = dim2.k2 "
        "WHERE dfeat0 > 0 AND local_feat <= 50"
    ).first_row()
    assert totals["c"] == pytest.approx(float(reference["c"]))
    assert totals["s"] == pytest.approx(float(reference["s"]), rel=1e-9)


def test_chain_graph_matches_materialized(paper_example_db, paper_example_graph):
    """Chain topology R - S - T with group-by at the far end."""
    factorizer = Factorizer(
        paper_example_db, paper_example_graph, VarianceSemiRing()
    )
    factorizer.lift()
    result = factorizer.absorb("t", ["d"])
    reference = paper_example_db.execute(
        "SELECT d, COUNT(*) AS c, SUM(b) AS s FROM r "
        "JOIN s ON r.a = s.a JOIN t ON s.a = t.a GROUP BY d ORDER BY d"
    )
    got = dict(zip(result["d"], zip(result["c"], result["s"])))
    for d, c, s in zip(reference["d"], reference["c"], reference["s"]):
        assert got[d][0] == pytest.approx(float(c))
        assert got[d][1] == pytest.approx(float(s))
