"""Join graph, hypertree and CPT clustering tests."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.exceptions import JoinGraphError
from repro.joingraph.clusters import cluster_graph, cluster_index
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import (
    decompose_cycles,
    find_cycle,
    is_acyclic,
    rooted_tree,
)


@pytest.fixture
def chain_db():
    db = Database()
    db.create_table("a", {"k": [1, 2], "x": [1.0, 2.0], "yv": [5.0, 6.0]})
    db.create_table("b", {"k": [1, 2], "j": [1, 1], "w": [3.0, 4.0]})
    db.create_table("c", {"j": [1], "z": [9.0]})
    return db


def chain_graph(db):
    graph = JoinGraph(db)
    graph.add_relation("a", features=["x"], y="yv")
    graph.add_relation("b", features=["w"])
    graph.add_relation("c", features=["z"])
    graph.add_edge("a", "b", ["k"])
    graph.add_edge("b", "c", ["j"])
    return graph


class TestConstruction:
    def test_unknown_table(self, chain_db):
        with pytest.raises(JoinGraphError):
            JoinGraph(chain_db).add_relation("nope")

    def test_unknown_feature(self, chain_db):
        with pytest.raises(JoinGraphError):
            JoinGraph(chain_db).add_relation("a", features=["missing"])

    def test_duplicate_relation(self, chain_db):
        graph = JoinGraph(chain_db).add_relation("a")
        with pytest.raises(JoinGraphError):
            graph.add_relation("a")

    def test_edge_requires_relations(self, chain_db):
        graph = JoinGraph(chain_db).add_relation("a")
        with pytest.raises(JoinGraphError):
            graph.add_edge("a", "b", ["k"])

    def test_edge_key_must_exist(self, chain_db):
        graph = JoinGraph(chain_db).add_relation("a").add_relation("b")
        with pytest.raises(JoinGraphError):
            graph.add_edge("a", "b", ["missing"])

    def test_target_lookup(self, chain_db):
        graph = chain_graph(chain_db)
        assert graph.target_relation == "a"
        assert graph.target_column == "yv"

    def test_no_target_raises(self, chain_db):
        graph = JoinGraph(chain_db).add_relation("b")
        with pytest.raises(JoinGraphError):
            _ = graph.target_relation

    def test_feature_ownership(self, chain_db):
        graph = chain_graph(chain_db)
        assert graph.relation_for_feature("w") == "b"
        with pytest.raises(JoinGraphError):
            graph.relation_for_feature("unknown")

    def test_string_features_auto_categorical(self, chain_db):
        chain_db.create_table(
            "s", {"k": [1, 2], "color": np.array(["red", "blue"], dtype=object)}
        )
        graph = JoinGraph(chain_db).add_relation("s", features=["color"])
        assert graph.is_categorical("s", "color")

    def test_validate_disconnected(self, chain_db):
        graph = JoinGraph(chain_db)
        graph.add_relation("a", y="yv")
        graph.add_relation("c")
        with pytest.raises(JoinGraphError):
            graph.validate()

    def test_validate_parallel_edges(self, chain_db):
        graph = JoinGraph(chain_db)
        graph.add_relation("a", y="yv").add_relation("b")
        graph.add_edge("a", "b", ["k"])
        graph.add_edge("a", "b", ["k"])
        with pytest.raises(JoinGraphError):
            graph.validate()

    def test_infer_edges(self, chain_db):
        graph = JoinGraph(chain_db)
        graph.add_relation("a", y="yv").add_relation("b").add_relation("c")
        graph.infer_edges()
        pairs = {frozenset((e.left, e.right)) for e in graph.edges}
        assert frozenset(("a", "b")) in pairs
        assert frozenset(("b", "c")) in pairs


class TestAnalysis:
    def test_multiplicities(self, chain_db):
        graph = chain_graph(chain_db)
        graph.analyze()
        ab = next(e for e in graph.edges if {e.left, e.right} == {"a", "b"})
        assert ab.multiplicity == "1-1"
        bc = next(e for e in graph.edges if {e.left, e.right} == {"b", "c"})
        assert bc.multiplicity == "n-1"

    def test_fact_detection_star(self, small_star):
        db, graph = small_star
        assert graph.detect_fact_tables() == ["fact"]


class TestHypertree:
    def test_rooted_tree_order(self, chain_db):
        graph = chain_graph(chain_db)
        parent, children, order = rooted_tree(graph, "a")
        assert parent["a"] is None and parent["c"] == "b"
        assert order[-1] == "a"  # root last (messages flow leaf -> root)

    def test_unknown_root(self, chain_db):
        with pytest.raises(JoinGraphError):
            rooted_tree(chain_graph(chain_db), "zzz")

    def test_acyclic(self, chain_db):
        assert is_acyclic(chain_graph(chain_db))

    def test_cycle_detection_and_decomposition(self):
        db = Database()
        db.create_table("r", {"a": [1], "b": [1], "yv": [1.0]})
        db.create_table("s", {"b": [1], "cx": [1]})
        db.create_table("t", {"cx": [1], "a": [1]})
        graph = JoinGraph(db)
        graph.add_relation("r", y="yv")
        graph.add_relation("s")
        graph.add_relation("t")
        graph.add_edge("r", "s", ["b"])
        graph.add_edge("s", "t", ["cx"])
        graph.add_edge("t", "r", ["a"])
        assert not is_acyclic(graph)
        assert find_cycle(graph) is not None
        decomposed = decompose_cycles(graph)
        assert is_acyclic(decomposed)
        # the cycle collapsed into one merged relation holding the target
        assert decomposed.target_relation.startswith("jb_tmp_hyper")


class TestClusters:
    def test_imdb_clusters(self, small_imdb):
        db, graph = small_imdb
        clusters = cluster_graph(graph)
        by_fact = {c.fact: set(c.members) for c in clusters}
        assert by_fact["cast_info"] == {"cast_info", "movie", "person"}
        assert by_fact["movie_comp"] == {"movie_comp", "comp", "movie"}
        assert by_fact["person_info"] == {"person_info", "person"}
        # movie is shared by four clusters
        index = cluster_index(clusters)
        assert len(index["movie"]) == 4

    def test_snowflake_single_cluster(self, small_star):
        db, graph = small_star
        clusters = cluster_graph(graph)
        assert len(clusters) == 1
        assert set(clusters[0].members) == set(graph.relations)

    def test_explicit_facts(self, small_imdb):
        db, graph = small_imdb
        facts = ["cast_info", "movie_comp", "movie_info", "movie_key",
                 "person_info"]
        clusters = cluster_graph(graph, fact_tables=facts)
        assert [c.fact for c in clusters] == facts

    def test_missing_coverage_raises(self, small_imdb):
        db, graph = small_imdb
        with pytest.raises(JoinGraphError):
            cluster_graph(graph, fact_tables=["person_info"])
