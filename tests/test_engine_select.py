"""End-to-end SELECT behaviour through the Database facade."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.exceptions import CatalogError, PlanError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "t",
        {
            "k": [1, 1, 2, 2, 3],
            "v": [10.0, 20.0, 30.0, 40.0, np.nan],
            "name": np.array(["a", "b", "a", "b", "c"], dtype=object),
        },
    )
    database.create_table("u", {"k": [1, 2], "w": [100.0, 200.0]})
    return database


class TestProjectionAndFilter:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM t")
        assert result.names == ["k", "v", "name"]
        assert result.num_rows == 5

    def test_arithmetic(self, db):
        result = db.execute("SELECT v * 2 + 1 AS x FROM t WHERE k = 1")
        assert list(result["x"]) == [21.0, 41.0]

    def test_where_excludes_nan_comparisons(self, db):
        result = db.execute("SELECT k FROM t WHERE v > 0")
        assert result.num_rows == 4  # the NaN row does not match

    def test_is_null(self, db):
        assert db.execute("SELECT k FROM t WHERE v IS NULL").num_rows == 1
        assert db.execute("SELECT k FROM t WHERE v IS NOT NULL").num_rows == 4

    def test_in_list(self, db):
        assert db.execute("SELECT k FROM t WHERE k IN (1, 3)").num_rows == 3

    def test_string_equality(self, db):
        assert db.execute("SELECT k FROM t WHERE name = 'a'").num_rows == 2

    def test_between(self, db):
        assert db.execute("SELECT k FROM t WHERE v BETWEEN 15 AND 35").num_rows == 2

    def test_case(self, db):
        result = db.execute(
            "SELECT CASE WHEN k = 1 THEN 'one' ELSE 'other' END AS lab FROM t"
        )
        assert list(result["lab"])[:3] == ["one", "one", "other"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2 AS x").scalar() == 3

    def test_distinct(self, db):
        assert db.execute("SELECT DISTINCT k FROM t").num_rows == 3


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT t.k, w FROM t JOIN u ON t.k = u.k ORDER BY t.k"
        )
        assert result.num_rows == 4  # k=3 has no match

    def test_left_join_pads_null(self, db):
        result = db.execute(
            "SELECT t.k, w FROM t LEFT JOIN u ON t.k = u.k WHERE w IS NULL"
        )
        assert list(result["k"]) == [3]

    def test_join_with_residual_condition(self, db):
        result = db.execute(
            "SELECT t.k FROM t JOIN u ON t.k = u.k AND v > 15"
        )
        assert result.num_rows == 3

    def test_cross_requires_equality(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT 1 AS x FROM t JOIN u ON v > w")

    def test_null_keys_never_match(self, db):
        db.create_table("n1", {"k": np.array([1.0, np.nan])})
        db.create_table("n2", {"k": np.array([np.nan, 1.0])})
        assert db.execute(
            "SELECT COUNT(*) AS n FROM n1 JOIN n2 ON n1.k = n2.k"
        ).scalar() == 1


class TestAggregation:
    def test_global_aggregates(self, db):
        row = db.execute(
            "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, "
            "MAX(v) AS hi FROM t"
        ).first_row()
        assert row["n"] == 5
        assert row["s"] == 100.0  # NaN skipped
        assert row["a"] == 25.0
        assert (row["lo"], row["hi"]) == (10.0, 40.0)

    def test_group_by(self, db):
        result = db.execute(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k ORDER BY k"
        )
        assert list(result["n"]) == [2, 2, 1]
        assert list(result["s"][:2]) == [30.0, 70.0]

    def test_sum_of_all_null_group_is_null(self, db):
        result = db.execute(
            "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k"
        )
        assert result.column("s").is_null()[2]

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT name) AS n FROM t").scalar() == 3

    def test_aggregate_arithmetic(self, db):
        value = db.execute("SELECT SUM(v) / COUNT(v) AS m FROM t").scalar()
        assert value == 25.0

    def test_having(self, db):
        result = db.execute(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k HAVING COUNT(*) > 1"
        )
        assert result.num_rows == 2

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT k % 2 AS parity, COUNT(*) AS n FROM t GROUP BY k % 2 "
            "ORDER BY parity"
        )
        assert list(result["n"]) == [2, 3]

    def test_aggregate_over_empty_input(self, db):
        row = db.execute(
            "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k > 99"
        ).first_row()
        assert row["n"] == 0

    def test_median(self, db):
        assert db.execute("SELECT MEDIAN(v) AS m FROM t").scalar() == 25.0

    def test_nulls_form_one_group(self, db):
        db.create_table("g", {"k": np.array([np.nan, np.nan, 1.0]), "v": [1, 2, 3]})
        result = db.execute("SELECT k, COUNT(*) AS n FROM g GROUP BY k")
        assert sorted(result["n"]) == [1, 2]


class TestWindowFunctions:
    def test_running_sum(self, db):
        result = db.execute(
            "SELECT k, SUM(k) OVER (ORDER BY k) AS rs FROM t ORDER BY k"
        )
        # Peers (equal k) share the frame-end value: 2,2,6,6,9
        assert list(result["rs"]) == [2, 2, 6, 6, 9]

    def test_partitioned_running_sum(self, db):
        result = db.execute(
            "SELECT name, SUM(v) OVER (PARTITION BY name ORDER BY k) AS rs "
            "FROM t WHERE v IS NOT NULL ORDER BY name, k"
        )
        assert list(result["rs"]) == [10.0, 40.0, 20.0, 60.0]

    def test_row_number(self, db):
        result = db.execute(
            "SELECT ROW_NUMBER() OVER (ORDER BY v) AS rn FROM t WHERE v IS NOT NULL"
        )
        assert sorted(result["rn"]) == [1, 2, 3, 4]

    def test_window_without_order_is_partition_total(self, db):
        result = db.execute(
            "SELECT SUM(k) OVER (PARTITION BY name) AS s FROM t ORDER BY k"
        )
        assert set(result["s"]) == {3.0, 3.0, 3.0}


class TestDDLDML:
    def test_create_table_as(self, db):
        db.execute("CREATE TABLE agg AS SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert db.execute("SELECT COUNT(*) AS n FROM agg").scalar() == 3

    def test_create_or_replace(self, db):
        db.execute("CREATE TABLE x AS SELECT 1 AS a")
        db.execute("CREATE OR REPLACE TABLE x AS SELECT 2 AS a")
        assert db.execute("SELECT a FROM x").scalar() == 2

    def test_drop(self, db):
        db.execute("CREATE TABLE x AS SELECT 1 AS a")
        db.execute("DROP TABLE x")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM x")

    def test_update_with_where(self, db):
        db.execute("UPDATE t SET v = 0 WHERE k = 1")
        assert db.execute("SELECT SUM(v) AS s FROM t").scalar() == 70.0

    def test_update_with_in_subquery(self, db):
        db.execute("UPDATE t SET v = v + 1 WHERE k IN (SELECT k FROM u)")
        assert db.execute("SELECT SUM(v) AS s FROM t").scalar() == 104.0

    def test_profiles_recorded(self, db):
        db.reset_profiles()
        db.execute("SELECT 1 AS x", tag="probe")
        assert db.profiles[-1].tag == "probe"
        assert db.profiles[-1].seconds >= 0


class TestSubqueries:
    def test_from_subquery(self, db):
        value = db.execute(
            "SELECT SUM(s) AS total FROM "
            "(SELECT k, SUM(v) AS s FROM t GROUP BY k)"
        ).scalar()
        assert value == 100.0

    def test_in_subquery(self, db):
        assert db.execute(
            "SELECT COUNT(*) AS n FROM t WHERE k IN (SELECT k FROM u)"
        ).scalar() == 4

    def test_paper_example_2_shape(self, db):
        # The exact SQL shape from the paper's Example 2.
        result = db.execute(
            "SELECT k, -(100.0/4)*100.0 + (s/c)*s"
            " + (100.0 - s)/(4 - c) * (100.0 - s) AS criteria"
            " FROM (SELECT k, SUM(c) OVER (ORDER BY k) AS c,"
            "              SUM(s) OVER (ORDER BY k) AS s"
            "       FROM (SELECT k, SUM(v) AS s, COUNT(v) AS c FROM t GROUP BY k))"
            " ORDER BY criteria DESC LIMIT 1"
        )
        assert result.num_rows == 1


class TestUnionAll:
    def test_concatenates_branches(self, db):
        result = db.execute(
            "SELECT k, v FROM t WHERE k = 1 UNION ALL "
            "SELECT k, v FROM t WHERE k = 2"
        )
        assert result.num_rows == 4
        assert list(result["k"]) == [1, 1, 2, 2]

    def test_discriminator_and_grouped_branches(self, db):
        # The batched split-query shape: per-branch literals + GROUP BY.
        result = db.execute(
            "SELECT 0 AS f, k, SUM(v) AS s FROM t GROUP BY k UNION ALL "
            "SELECT 1 AS f, k, SUM(w) AS s FROM u GROUP BY k"
        )
        assert result.num_rows == 5
        assert sorted(result["f"]) == [0, 0, 0, 1, 1]

    def test_int_float_promotion(self, db):
        result = db.execute("SELECT k AS x FROM u UNION ALL SELECT v AS x FROM t")
        column = result.column("x")
        assert column.values.dtype == np.float64
        assert column.is_null().sum() == 1  # t.v carries one NaN

    def test_duplicates_survive(self, db):
        result = db.execute("SELECT k FROM u UNION ALL SELECT k FROM u")
        assert result.num_rows == 4

    def test_create_table_from_union(self, db):
        db.execute(
            "CREATE TABLE both_keys AS "
            "SELECT k FROM t UNION ALL SELECT k FROM u"
        )
        assert db.execute("SELECT COUNT(*) AS n FROM both_keys").scalar() == 7

    def test_mismatched_column_count_raises(self, db):
        with pytest.raises(PlanError, match="column counts"):
            db.execute("SELECT k, v FROM t UNION ALL SELECT k FROM u")

    def test_string_number_mix_raises(self, db):
        with pytest.raises(PlanError, match="mixes strings"):
            db.execute("SELECT name FROM t UNION ALL SELECT k FROM u")
