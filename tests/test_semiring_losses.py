"""Loss-function tests: gradients vs numeric differentiation, SQL face
agreement with the NumPy face, init scores, and the galaxy restriction."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.exceptions import SemiRingError
from repro.semiring.losses import LOSSES, SoftmaxLoss, get_loss

REGRESSION_LOSSES = [
    "l2", "l1", "huber", "fair", "poisson", "quantile", "mape", "gamma",
    "tweedie",
]


def numeric_gradient(loss, y, pred, eps=1e-5):
    return (loss.loss(y, pred + eps) - loss.loss(y, pred - eps)) / (2 * eps)


class TestGradients:
    @pytest.mark.parametrize("name", ["l2", "huber", "fair", "poisson",
                                      "gamma", "tweedie"])
    def test_gradient_matches_numeric(self, name):
        loss = get_loss(name)
        rng = np.random.default_rng(0)
        y = np.abs(rng.normal(2.0, 0.5, 50)) + 0.5  # positive for log-links
        pred = rng.normal(0.5, 0.2, 50)
        expected = numeric_gradient(loss, y, pred)
        assert np.allclose(loss.gradient(y, pred), expected, atol=1e-4)

    @pytest.mark.parametrize("name", ["poisson", "gamma", "tweedie"])
    def test_hessian_matches_numeric(self, name):
        loss = get_loss(name)
        rng = np.random.default_rng(1)
        y = np.abs(rng.normal(2.0, 0.5, 30)) + 0.5
        pred = rng.normal(0.5, 0.2, 30)
        eps = 1e-5
        expected = (
            loss.gradient(y, pred + eps) - loss.gradient(y, pred - eps)
        ) / (2 * eps)
        assert np.allclose(loss.hessian(y, pred), expected, atol=1e-3)

    def test_l1_gradient_is_sign(self):
        loss = get_loss("l1")
        g = loss.gradient(np.array([1.0, 5.0]), np.array([3.0, 1.0]))
        assert list(g) == [1.0, -1.0]

    def test_quantile_gradient(self):
        loss = get_loss("quantile", alpha=0.9)
        g = loss.gradient(np.array([5.0, 0.0]), np.array([0.0, 5.0]))
        assert g[0] == pytest.approx(-0.9)
        assert g[1] == pytest.approx(0.1)

    def test_huber_clips(self):
        loss = get_loss("huber", delta=1.0)
        g = loss.gradient(np.array([0.0]), np.array([10.0]))
        assert g[0] == 1.0


class TestSQLFaceAgreement:
    """The SQL expressions must compute the same values as the NumPy face."""

    @pytest.mark.parametrize("name", REGRESSION_LOSSES)
    def test_gradient_sql_matches(self, name):
        loss = get_loss(name)
        rng = np.random.default_rng(2)
        y = np.abs(rng.normal(2.0, 0.5, 40)) + 0.5
        pred = rng.normal(0.5, 0.2, 40)
        db = Database()
        db.create_table("t", {"yv": y, "pv": pred})
        g_sql = db.execute(
            f"SELECT {loss.gradient_sql('yv', 'pv')} AS g FROM t"
        )["g"]
        assert np.allclose(g_sql, loss.gradient(y, pred), atol=1e-9)
        h_sql = db.execute(
            f"SELECT {loss.hessian_sql('yv', 'pv')} AS h FROM t"
        )["h"]
        expected_h = loss.hessian(y, pred)
        assert np.allclose(np.broadcast_to(h_sql, expected_h.shape), expected_h,
                           atol=1e-9)


class TestInitScores:
    def test_l2_mean(self):
        assert get_loss("l2").init_score(np.array([1.0, 3.0])) == 2.0

    def test_l1_median(self):
        assert get_loss("l1").init_score(np.array([1.0, 2.0, 9.0])) == 2.0

    def test_poisson_log_mean(self):
        assert get_loss("poisson").init_score(np.array([np.e, np.e])) == pytest.approx(1.0)

    def test_quantile(self):
        loss = get_loss("quantile", alpha=0.25)
        assert loss.init_score(np.arange(101.0)) == pytest.approx(25.0)


class TestRegistryAndRestrictions:
    def test_aliases(self):
        assert get_loss("rmse").name == "l2"
        assert get_loss("mae").name == "l1"
        assert get_loss("multiclass", num_classes=4).num_classes == 4

    def test_unknown(self):
        with pytest.raises(SemiRingError):
            get_loss("hinge")

    def test_only_l2_supports_galaxy(self):
        for name in REGRESSION_LOSSES:
            loss = get_loss(name)
            assert loss.supports_galaxy == (name == "l2")

    def test_parameter_validation(self):
        with pytest.raises(SemiRingError):
            get_loss("huber", delta=-1)
        with pytest.raises(SemiRingError):
            get_loss("quantile", alpha=1.5)
        with pytest.raises(SemiRingError):
            get_loss("tweedie", rho=3.0)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        scores = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probs = SoftmaxLoss.softmax(scores)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_gradient_class(self):
        loss = SoftmaxLoss(3)
        probs = np.array([[0.2, 0.3, 0.5]])
        y = np.array([2])
        assert loss.gradient_class(y, probs, 2)[0] == pytest.approx(-0.5)
        assert loss.gradient_class(y, probs, 0)[0] == pytest.approx(0.2)

    def test_loss_decreases_with_confidence(self):
        loss = SoftmaxLoss(2)
        confident = loss.loss(np.array([1]), np.array([[0.0, 3.0]]))
        unsure = loss.loss(np.array([1]), np.array([[0.0, 0.1]]))
        assert confident[0] < unsure[0]
