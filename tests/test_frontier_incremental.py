"""Incremental frontier state: parity, census, fallbacks, residual labels.

The load-bearing claim (ISSUE 3 acceptance): maintaining leaf membership
as a persistent column — one root pass per tree plus two depth-1 narrow
UPDATEs per committed split — grows *identical* trees to both the
per-round rebuild path (``frontier_state="rebuild"``) and the per-leaf
path (``split_batching="off"``), at depth >= 6, on embedded and sqlite,
across growth policies, categorical features and missing-value routing,
with zero full-fact label rebuilds after the root pass and a non-zero
carry-message cache hit rate; and a backend without the narrow-UPDATE
capability degrades to rebuild instead of erroring.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.backends import SQLiteConnector
from repro.backends.embedded import EmbeddedConnector
from repro.core.params import TrainParams
from repro.core.predict import feature_frame
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.datasets import favorita
from repro.engine.database import Database
from repro.exceptions import ExecutionError
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


def deep_schema(db, n=2500, seed=11):
    """A snowflake whose signal keeps paying past depth 6: a continuous
    fact feature, a string categorical and a numeric-with-nulls dimension
    feature two hops out."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) * 4.0
    k = rng.integers(0, 60, n)
    mid_fk = np.arange(60) % 12
    color_codes = rng.integers(0, 4, 12)
    colors = np.array(["red", "green", "blue", "teal"], dtype=object)[color_codes]
    dnum = rng.normal(size=12) * 6.0
    dnum[rng.random(12) < 0.25] = np.nan
    y = (
        np.sin(x) * 5.0
        + x * 1.5
        + np.where(np.isin(color_codes, [0, 2]), 9.0, -9.0)[mid_fk][k]
        + np.nan_to_num(dnum)[mid_fk][k]
        + rng.normal(0, 0.3, n)
    )
    db.create_table("fact", {"k": k, "x": x, "yv": y})
    db.create_table("mid", {"k": np.arange(60), "fk": mid_fk,
                            "mnum": rng.normal(size=60) * 2.0})
    db.create_table("far", {"fk": np.arange(12), "color": colors, "dnum": dnum})
    graph = JoinGraph(db)
    graph.add_relation("fact", features=["x"], y="yv", is_fact=True)
    graph.add_relation("mid", features=["mnum"])
    graph.add_relation("far", features=["color", "dnum"],
                       categorical=["color"])
    graph.add_edge("fact", "mid", ["k"])
    graph.add_edge("mid", "far", ["fk"])
    return db, graph


def trees_of(model):
    return [tree.to_dict() for tree in model.trees]


def model_depth(model):
    return max(
        leaf.depth for tree in model.trees for leaf in tree.leaves()
    )


DEEP_PARAMS = {
    "num_iterations": 2,
    "num_leaves": 72,
    "min_data_in_leaf": 1,
    "learning_rate": 0.2,
}


class TestDeepParity:
    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    @pytest.mark.parametrize("missing", ["right", "both"])
    def test_embedded_depth6_parity(self, growth, missing):
        grown = {}
        for key, overrides in (
            ("incremental", {"frontier_state": "incremental"}),
            ("rebuild", {"frontier_state": "rebuild"}),
            ("per-leaf", {"split_batching": "off"}),
        ):
            db, graph = deep_schema(Database())
            model = repro.train_gradient_boosting(
                db, graph,
                {**DEEP_PARAMS, "growth": growth, "missing": missing,
                 **overrides},
            )
            grown[key] = (
                trees_of(model),
                repro.rmse_on_join(db, graph, model),
                dict(model.frontier_census),
            )
        assert model_depth_from_dicts(grown["incremental"][0]) >= 6
        assert grown["incremental"][0] == grown["rebuild"][0]
        assert grown["incremental"][0] == grown["per-leaf"][0]
        assert grown["incremental"][1] == pytest.approx(
            grown["rebuild"][1], abs=1e-9
        )
        census = grown["incremental"][2]
        # Zero full-fact label rebuilds after the root pass.
        assert census["label_queries"] == 0
        assert census["root_label_passes"] == DEEP_PARAMS["num_iterations"]
        assert census["delta_label_updates"] > 0
        # Carry messages shared across relations with a common routing
        # prefix (fact -> mid reused by mid's and far's split queries).
        assert census["carry_cache_hits"] > 0

    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    def test_sqlite_depth6_parity(self, growth):
        grown = {}
        for key, overrides in (
            ("incremental", {"frontier_state": "incremental"}),
            ("rebuild", {"frontier_state": "rebuild"}),
            ("per-leaf", {"split_batching": "off"}),
        ):
            db, graph = deep_schema(SQLiteConnector(), n=1500)
            model = repro.train_gradient_boosting(
                db, graph,
                {**DEEP_PARAMS, "num_iterations": 1, "growth": growth,
                 "missing": "both", **overrides},
            )
            grown[key] = (trees_of(model), dict(model.frontier_census))
        assert model_depth_from_dicts(grown["incremental"][0]) >= 6
        assert grown["incremental"][0] == grown["rebuild"][0]
        assert grown["incremental"][0] == grown["per-leaf"][0]
        census = grown["incremental"][1]
        assert census["label_queries"] == 0
        assert census["root_label_passes"] == 1
        assert census["carry_cache_hits"] > 0

    def test_cross_backend_incremental_parity(self):
        grown = {}
        for name, maker in (("embedded", Database), ("sqlite", SQLiteConnector)):
            db, graph = deep_schema(maker(), n=1200)
            model = repro.train_gradient_boosting(
                db, graph, {**DEEP_PARAMS, "num_iterations": 1},
            )
            grown[name] = trees_of(model)
        assert grown["embedded"] == grown["sqlite"]


def model_depth_from_dicts(tree_dicts):
    def depth(node):
        if "left" not in node:
            return node["depth"]
        return max(depth(node["left"]), depth(node["right"]))

    return max(depth(t["tree"]) for t in tree_dicts)


class TestResidualLabels:
    @pytest.mark.parametrize("strategy", ["swap", "update", "create"])
    def test_update_strategy_parity(self, strategy):
        """The CASE-over-jb_leaf residual fast path must shift exactly the
        rows the per-leaf semi-join scans would have, for every logical
        update strategy that supports it."""
        grown = {}
        for fs in ("incremental", "rebuild"):
            db, graph = favorita(num_fact_rows=2500, num_extra_features=2,
                                 seed=9)
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 3, "num_leaves": 8, "min_data_in_leaf": 3,
                 "update_strategy": strategy, "frontier_state": fs},
            )
            grown[fs] = (trees_of(model), repro.rmse_on_join(db, graph, model))
        assert grown["incremental"][0] == grown["rebuild"][0]
        assert grown["incremental"][1] == pytest.approx(
            grown["rebuild"][1], abs=1e-9
        )

    def test_general_loss_parity(self):
        """Non-L2 losses route through apply_general: the label-driven
        prediction shift must match the semi-join path."""
        grown = {}
        for fs in ("incremental", "rebuild"):
            db, graph = favorita(num_fact_rows=2000, num_extra_features=0,
                                 seed=3)
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3,
                 "objective": "huber", "frontier_state": fs},
            )
            grown[fs] = trees_of(model)
        assert grown["incremental"] == grown["rebuild"]

    def test_labels_match_tree_routing(self):
        """Row-level check: after training, every fact row's jb_leaf agrees
        with client-side routing through the trained tree."""
        db, graph = favorita(num_fact_rows=2000, num_extra_features=0, seed=4)
        from repro.semiring.gradient import GradientSemiRing
        from repro.core.split import GradientCriterion

        ring = GradientSemiRing()
        factorizer = Factorizer(db, graph, ring)
        factorizer.lift(
            [("pred", "0.0")] + ring.lift_pair_sql("1", "(0.0 - t.unit_sales)")
        )
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, GradientCriterion(),
            TrainParams.from_dict({"num_leaves": 8, "min_data_in_leaf": 3}),
        )
        model = trainer.train()
        label_column = trainer.leaf_label_column(model)
        assert label_column is not None
        fact = graph.target_relation
        labels = factorizer.storage_table(fact)
        label_values = db.table(labels).column(label_column).values
        leaf_pred = {leaf.node_id: leaf.prediction for leaf in model.leaves()}
        assert set(np.unique(label_values)) <= set(leaf_pred)
        features = feature_frame(
            db, graph, columns=[f for _, f in graph.all_features()],
            include_target=False,
        )
        routed = model.predict_arrays(features)
        labeled = np.array([leaf_pred[v] for v in label_values])
        np.testing.assert_allclose(routed, labeled)
        factorizer.cleanup()


class TestFallbacks:
    def _no_narrow_update_db(self):
        conn = EmbeddedConnector()
        conn.capabilities = dataclasses.replace(
            conn.capabilities, narrow_update=False
        )
        return conn

    def test_backend_without_narrow_update_degrades_to_rebuild(self):
        """No narrow-UPDATE capability: training succeeds, identical trees,
        labels rebuilt per round instead of maintained."""
        db, graph = favorita(
            db=self._no_narrow_update_db(), num_fact_rows=2000,
            num_extra_features=0, seed=6,
        )
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3},
        )
        census = model.frontier_census
        assert census["incremental_rounds"] == 0
        assert census["label_queries"] == census["batched_rounds"] > 0
        assert census["incremental_veto"] is not None

        db2, graph2 = favorita(num_fact_rows=2000, num_extra_features=0, seed=6)
        reference = repro.train_gradient_boosting(
            db2, graph2,
            {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3,
             "frontier_state": "rebuild"},
        )
        assert trees_of(model) == trees_of(reference)

    def test_delta_update_failure_degrades_mid_training(self):
        """A failing delta UPDATE mid-tree deactivates the incremental
        state: remaining rounds rebuild, training completes with identical
        trees, no error escapes."""
        db, graph = favorita(num_fact_rows=2000, num_extra_features=0, seed=6)
        real_execute = db.execute
        fired = {"n": 0}

        def flaky(sql, tag=None):
            if tag == "frontier_delta" and fired["n"] == 0:
                fired["n"] += 1
                raise ExecutionError("injected delta failure")
            return real_execute(sql, tag=tag)

        db.execute = flaky
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3},
        )
        db.execute = real_execute
        census = model.frontier_census
        assert fired["n"] == 1
        assert census["incremental_veto"] is not None
        assert census["label_queries"] > 0  # rebuild took over

        db2, graph2 = favorita(num_fact_rows=2000, num_extra_features=0, seed=6)
        reference = repro.train_gradient_boosting(
            db2, graph2,
            {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3,
             "frontier_state": "rebuild"},
        )
        assert trees_of(model) == trees_of(reference)

    def test_multiclass_shares_one_fact_table(self):
        """K softmax chains adopt one lifted fact: each trainer mints its
        own label column, and batching stays active for every chain."""
        db = Database()
        rng = np.random.default_rng(2)
        n = 600
        k = rng.integers(0, 20, n)
        f = rng.normal(size=20) * 3
        label = (f[k] > 0).astype(np.int64)
        db.create_table("fact", {"k": k, "cls": label})
        db.create_table("dim", {"k": np.arange(20), "f": f})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="cls", is_fact=True)
        graph.add_relation("dim", features=["f"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 2, "num_leaves": 4, "objective": "softmax",
             "num_class": 2, "min_data_in_leaf": 3},
        )
        preds = model.predict_arrays({"f": f[k]})
        assert (preds == label).mean() > 0.95


class TestTempHygiene:
    def _chain(self):
        db = Database()
        rng = np.random.default_rng(0)
        n = 300
        mid_keys = rng.integers(0, 10, n)
        db.create_table(
            "fact",
            {"mk": mid_keys, "yv": rng.normal(size=n),
             "tag_col": (mid_keys % 2).astype(np.int64)},
        )
        db.create_table("mid", {"mk": np.arange(10), "fk": np.arange(10) % 3})
        db.create_table("far", {"fk": np.arange(3), "f": np.arange(3) * 1.0})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv", is_fact=True)
        graph.add_relation("mid")
        graph.add_relation("far", features=["f"])
        graph.add_edge("fact", "mid", ["mk"])
        graph.add_edge("mid", "far", ["fk"])
        return db, graph

    def test_multi_absorption_failure_drops_partial_temps(self):
        """A carry message failing mid-build must not strand the carry
        temps materialized before it (the leak fixed in this PR)."""
        db, graph = self._chain()
        ring = VarianceSemiRing()
        factorizer = Factorizer(db, graph, ring)
        factorizer.lift()
        lifted = factorizer.lifted["fact"]
        before = set(db.table_names())
        real_execute = db.execute
        calls = {"n": 0}

        def failing(sql, tag=None):
            if tag == "message":
                calls["n"] += 1
                if calls["n"] == 2:
                    raise ExecutionError("injected message failure")
            return real_execute(sql, tag=tag)

        db.execute = failing
        with pytest.raises(ExecutionError, match="injected"):
            # far's absorption nests two carry messages (fact->mid inside
            # mid->far); the second one fails.
            factorizer.multi_absorption(
                "far", carry={"fact": ("tag_col",)},
                table_override={"fact": lifted},
            )
        db.execute = real_execute
        assert calls["n"] == 2
        assert set(db.table_names()) == before
        factorizer.cleanup()

    def test_disabled_cache_does_not_leak_carry_temps(self):
        """With a disabled MessageCache (the LMFAO/MADLib baselines'
        configuration), scoped carry caching must fall back to the
        caller-dropped temp path instead of orphaning msg tables."""
        db, graph = favorita(num_fact_rows=800, num_extra_features=0, seed=1)
        factorizer = Factorizer(db, graph, VarianceSemiRing(),
                                cache_enabled=False)
        factorizer.lift()
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(),
            TrainParams.from_dict({"num_leaves": 6, "min_data_in_leaf": 3}),
        )
        trainer.train()
        factorizer.cleanup()
        leftovers = [n for n in db.table_names() if n.startswith("jb_tmp_msg")]
        assert leftovers == []

    def test_masked_update_never_writes_through_aliases(self):
        """Columns can be buffer-aliased (``SET a = b`` stores a view):
        the narrow-UPDATE swap path must merge into a fresh buffer, not
        mutate the stored array."""
        db = Database()
        db.create_table("t", {"k": np.array([1, 2, 3]),
                              "a": np.array([7, 8, 9]),
                              "b": np.array([10, 20, 30])})
        db.execute("UPDATE t SET a = b")       # a now aliases b's buffer
        db.execute("UPDATE t SET b = 5 WHERE k = 1")
        assert db.table("t").column("a").values.tolist() == [10, 20, 30]
        assert db.table("t").column("b").values.tolist() == [5, 20, 30]
        # SQL swap semantics: assignments read pre-update values.
        db.execute("UPDATE t SET a = b, b = a WHERE k > 0")
        assert db.table("t").column("a").values.tolist() == [5, 20, 30]
        assert db.table("t").column("b").values.tolist() == [10, 20, 30]

    def test_batched_round_failure_drops_label_table(self):
        """An exception inside a rebuild round must not strand the
        frontier label table."""
        db, graph = favorita(num_fact_rows=800, num_extra_features=0, seed=1)
        ring = VarianceSemiRing()
        factorizer = Factorizer(db, graph, ring)
        factorizer.lift()
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(),
            TrainParams.from_dict(
                {"num_leaves": 4, "min_data_in_leaf": 3,
                 "frontier_state": "rebuild"}
            ),
        )
        real_execute = db.execute

        def failing(sql, tag=None):
            if tag == "feature":
                raise ExecutionError("injected feature failure")
            return real_execute(sql, tag=tag)

        db.execute = failing
        with pytest.raises(ExecutionError, match="injected"):
            trainer.train()
        db.execute = real_execute
        stranded = [
            name for name in db.table_names()
            if "frontier" in name
        ]
        assert stranded == []
        factorizer.cleanup()


class TestCarryCacheScoping:
    def test_scoped_entries_evicted_on_epoch_advance(self):
        """Carry messages cached under one leaf epoch are dropped (tables
        included) when the next round begins."""
        db, graph = favorita(num_fact_rows=1500, num_extra_features=0, seed=5)
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3},
        )
        census = model.frontier_census
        assert census["carry_cache_hits"] > 0
        # After cleanup no message temps survive.
        leftovers = [n for n in db.table_names() if n.startswith("jb_tmp_msg")]
        assert leftovers == []

    def test_params_alias_and_validation(self):
        assert TrainParams.from_dict(
            {"leaf_state": "rebuild"}
        ).frontier_state == "rebuild"
        from repro.exceptions import TrainingError

        with pytest.raises(TrainingError, match="frontier_state"):
            TrainParams.from_dict({"frontier_state": "sometimes"})
