"""The paper's core claim: a factorized tree equals the single-table tree.

Besides unit tests of tree mechanics, the property test trains JoinBoost
over random star schemas and asserts *identical structure* (same split
features, same thresholds, same leaf values) to the exact reference tree
trained on the materialized join.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.baselines.exactgbm import ExactDecisionTree
from repro.baselines.export import load_feature_matrix
from repro.core.params import TrainParams
from repro.core.predict import feature_frame
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.datasets import star_schema
from repro.engine.database import Database
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


def jb_structure(model, names):
    out = []

    def walk(node, depth):
        if node.is_leaf:
            out.append((depth, None, round(node.prediction, 9)))
            return
        out.append(
            (depth, node.left.predicate.column,
             round(float(node.left.predicate.value), 9))
        )
        walk(node.left, depth + 1)
        walk(node.right, depth + 1)

    walk(model.root, 0)
    return out


def ref_structure(tree, names):
    return [
        (d, names[f] if f is not None else None, t) for d, f, t in tree.structure()
    ]


class TestTreeMechanics:
    def test_leaf_count_bounded(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 4})
        assert model.num_leaves <= 4

    def test_max_depth_respected(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(
            db, graph, {"num_leaves": 32, "max_depth": 2}
        )
        assert all(leaf.depth <= 2 for leaf in model.leaves())

    def test_min_child_samples(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(
            db, graph, {"num_leaves": 16, "min_data_in_leaf": 100}
        )
        for leaf in model.leaves():
            assert leaf.aggregates["c"] >= 100

    def test_leaf_predicates_partition(self, small_star):
        """Leaf predicates must be mutually exclusive and exhaustive."""
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 8})
        frame = feature_frame(db, graph)
        n = len(next(iter(frame.values())))
        coverage = np.zeros(n, dtype=int)
        from repro.core.tree import _eval_predicate

        for leaf in model.leaves():
            mask = np.ones(n, dtype=bool)
            for relation, preds in leaf.path_predicates().items():
                for pred in preds:
                    mask &= _eval_predicate(pred, frame[pred.column])
            coverage += mask
        assert np.all(coverage == 1)

    def test_aggregates_consistent_with_children(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 8})
        for node in model.nodes():
            if not node.is_leaf:
                assert node.aggregates["c"] == pytest.approx(
                    node.left.aggregates["c"] + node.right.aggregates["c"]
                )

    def test_dump_and_to_dict(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 4})
        text = model.dump()
        assert "leaf value" in text
        as_dict = model.to_dict()
        assert "tree" in as_dict and "features" in as_dict

    def test_depth_wise_growth(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(
            db, graph, {"num_leaves": 8, "growth": "depth-wise"}
        )
        depths = sorted(leaf.depth for leaf in model.leaves())
        assert depths[-1] - depths[0] <= 2  # balanced-ish growth

    def test_categorical_split(self):
        rng = np.random.default_rng(0)
        db = Database()
        n = 500
        color = rng.integers(0, 4, n)
        y = np.where(np.isin(color, [0, 2]), 10.0, -10.0) + rng.normal(0, 0.1, n)
        db.create_table("fact", {"k": np.arange(n), "yv": y})
        db.create_table("dim", {"k": np.arange(n), "color": color})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["color"], categorical=["color"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_decision_tree(db, graph, {"num_leaves": 2})
        pred = model.root.left.predicate
        assert pred.op in ("IN", "NOT IN")
        assert set(pred.value) in ({0, 2}, {1, 3})

    def test_referenced_attributes(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 8})
        attrs = model.referenced_attributes()
        assert attrs  # trained tree references something
        for relation, column in attrs:
            assert relation in graph.relations


class TestEquivalenceWithSingleTable:
    def test_star_equivalence(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(
            db, graph, {"num_leaves": 8, "min_data_in_leaf": 3}
        )
        X, y, names = load_feature_matrix(db, graph)
        reference = ExactDecisionTree(num_leaves=8, min_child_samples=3).fit(X, y)
        assert jb_structure(model, names) == ref_structure(reference, names)

    def test_chain_equivalence(self, paper_example_db, paper_example_graph):
        model = repro.train_decision_tree(
            paper_example_db, paper_example_graph, {"num_leaves": 3}
        )
        X, y, names = load_feature_matrix(paper_example_db, paper_example_graph)
        reference = ExactDecisionTree(num_leaves=3, min_child_samples=1).fit(X, y)
        assert jb_structure(model, names) == ref_structure(reference, names)

    @given(
        seed=st.integers(0, 5_000),
        num_dims=st.integers(1, 3),
        n=st.integers(30, 200),
        num_leaves=st.integers(2, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed, num_dims, n, num_leaves):
        db, graph = star_schema(
            num_fact_rows=n, num_dims=num_dims, dim_size=7, seed=seed
        )
        model = repro.train_decision_tree(
            db, graph, {"num_leaves": num_leaves, "min_data_in_leaf": 2}
        )
        X, y, names = load_feature_matrix(db, graph)
        reference = ExactDecisionTree(
            num_leaves=num_leaves, min_child_samples=2
        ).fit(X, y)
        assert jb_structure(model, names) == ref_structure(reference, names)

    def test_predictions_equal(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 8})
        X, y, names = load_feature_matrix(db, graph)
        reference = ExactDecisionTree(num_leaves=8).fit(X, y)
        frame = feature_frame(db, graph)
        assert np.allclose(
            np.sort(model.predict_arrays(frame)), np.sort(reference.predict(X))
        )


class TestCPTRestriction:
    def test_splits_confined_to_one_cluster(self, small_imdb):
        from repro.joingraph.clusters import cluster_graph
        from repro.core.split import GradientCriterion
        from repro.semiring.gradient import GradientSemiRing

        db, graph = small_imdb
        clusters = cluster_graph(graph)
        ring = GradientSemiRing()
        factorizer = Factorizer(db, graph, ring)
        y = graph.target_column
        factorizer.lift(ring.lift_pair_sql("1", f"(0.0 - t.{y})"))
        params = TrainParams.from_dict({"num_leaves": 6})
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, GradientCriterion(), params, clusters=clusters
        )
        model = trainer.train()
        split_relations = {
            node.relation for node in model.nodes() if node.relation is not None
        }
        assert any(
            split_relations <= set(cluster.members) for cluster in clusters
        )
        factorizer.cleanup()
