"""Missing join keys (Appendix D.2) and outer-join factorization.

When fact rows reference keys absent from a dimension, an inner-join
factorization silently drops them; the paper's fix is full/left outer
joins in message passing plus NULL-aware split handling.  These tests
pin both behaviours.
"""

import numpy as np
import pytest

import repro
from repro.engine.database import Database
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


@pytest.fixture
def holey_db():
    """Fact rows 3 and 4 reference a key missing from the dimension."""
    db = Database()
    db.create_table(
        "fact",
        {"k": [0, 1, 0, 7, 7], "yv": [1.0, 2.0, 3.0, 4.0, 5.0]},
    )
    db.create_table("dim", {"k": [0, 1], "feat": [10.0, 20.0]})
    graph = JoinGraph(db)
    graph.add_relation("fact", y="yv")
    graph.add_relation("dim", features=["feat"])
    graph.add_edge("fact", "dim", ["k"])
    return db, graph


class TestMissingJoinKeys:
    def test_inner_factorization_drops_unmatched(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(db, graph, VarianceSemiRing(), assume_ri=False)
        factorizer.lift()
        totals = factorizer.totals()
        # k=7 rows do not join: inner semantics keep 3 rows.
        assert totals["c"] == 3

    def test_outer_factorization_keeps_all_rows(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(
            db, graph, VarianceSemiRing(), assume_ri=False, outer_joins=True
        )
        factorizer.lift()
        totals = factorizer.totals()
        assert totals["c"] == 5
        assert totals["s"] == pytest.approx(15.0)

    def test_outer_group_by_puts_unmatched_in_null_group(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(
            db, graph, VarianceSemiRing(), assume_ri=False, outer_joins=True
        )
        factorizer.lift()
        result = factorizer.absorb("fact", ["k"])
        by_key = dict(zip(result["k"], result["c"]))
        assert by_key[7] == 2  # unmatched keys keep their own group

    def test_training_with_nulls_routes_missing(self, holey_db):
        db, graph = holey_db
        # feature_frame pads missing dimension values with NaN; splits
        # route them via include_null (missing='right' default).
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        assert np.isnan(frame["feat"][3]) and np.isnan(frame["feat"][4])

    def test_missing_both_tries_null_routing(self):
        """missing='both' can route NULLs to whichever side wins."""
        rng = np.random.default_rng(1)
        db = Database()
        n = 400
        k = rng.integers(0, 10, n)
        feat = rng.normal(size=10) * 10
        feat[3] = np.nan  # a dimension row with a missing feature value
        y = np.where(np.isnan(feat[k]), 50.0, feat[k]) + rng.normal(0, 0.1, n)
        db.create_table("fact", {"k": k, "yv": y})
        db.create_table("dim", {"k": np.arange(10), "feat": feat})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["feat"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "learning_rate": 0.5, "missing": "both"},
        )
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        scores = model.predict_arrays(frame)
        null_rows = np.isnan(frame["feat"])
        if null_rows.any():
            # NULL rows (true value 50) must be scored well above the rest.
            assert scores[null_rows].mean() > scores[~null_rows].mean()


class TestBenchReportHelpers:
    def test_format_table(self):
        from repro.bench.report import format_table

        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "== T ==" in text
        assert "2.500" in text

    def test_format_series_alignment(self):
        from repro.bench.report import format_series

        text = format_series("S", "x", [1, 2], {"y": [10.0], "z": [1.0, 2.0]})
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows
