"""Missing join keys (Appendix D.2) and outer-join factorization.

When fact rows reference keys absent from a dimension, an inner-join
factorization silently drops them; the paper's fix is full/left outer
joins in message passing plus NULL-aware split handling.  These tests
pin both behaviours.
"""

import numpy as np
import pytest

import repro
from repro.engine.database import Database
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


@pytest.fixture
def holey_db():
    """Fact rows 3 and 4 reference a key missing from the dimension."""
    db = Database()
    db.create_table(
        "fact",
        {"k": [0, 1, 0, 7, 7], "yv": [1.0, 2.0, 3.0, 4.0, 5.0]},
    )
    db.create_table("dim", {"k": [0, 1], "feat": [10.0, 20.0]})
    graph = JoinGraph(db)
    graph.add_relation("fact", y="yv")
    graph.add_relation("dim", features=["feat"])
    graph.add_edge("fact", "dim", ["k"])
    return db, graph


class TestMissingJoinKeys:
    def test_inner_factorization_drops_unmatched(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(db, graph, VarianceSemiRing(), assume_ri=False)
        factorizer.lift()
        totals = factorizer.totals()
        # k=7 rows do not join: inner semantics keep 3 rows.
        assert totals["c"] == 3

    def test_outer_factorization_keeps_all_rows(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(
            db, graph, VarianceSemiRing(), assume_ri=False, outer_joins=True
        )
        factorizer.lift()
        totals = factorizer.totals()
        assert totals["c"] == 5
        assert totals["s"] == pytest.approx(15.0)

    def test_outer_group_by_puts_unmatched_in_null_group(self, holey_db):
        db, graph = holey_db
        factorizer = Factorizer(
            db, graph, VarianceSemiRing(), assume_ri=False, outer_joins=True
        )
        factorizer.lift()
        result = factorizer.absorb("fact", ["k"])
        by_key = dict(zip(result["k"], result["c"]))
        assert by_key[7] == 2  # unmatched keys keep their own group

    def test_training_with_nulls_routes_missing(self, holey_db):
        db, graph = holey_db
        # feature_frame pads missing dimension values with NaN; splits
        # route them via include_null (missing='right' default).
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        assert np.isnan(frame["feat"][3]) and np.isnan(frame["feat"][4])

    def test_missing_both_tries_null_routing(self):
        """missing='both' can route NULLs to whichever side wins."""
        rng = np.random.default_rng(1)
        db = Database()
        n = 400
        k = rng.integers(0, 10, n)
        feat = rng.normal(size=10) * 10
        feat[3] = np.nan  # a dimension row with a missing feature value
        y = np.where(np.isnan(feat[k]), 50.0, feat[k]) + rng.normal(0, 0.1, n)
        db.create_table("fact", {"k": k, "yv": y})
        db.create_table("dim", {"k": np.arange(10), "feat": feat})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["feat"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "learning_rate": 0.5, "missing": "both"},
        )
        from repro.core.predict import feature_frame

        frame = feature_frame(db, graph)
        scores = model.predict_arrays(frame)
        null_rows = np.isnan(frame["feat"])
        if null_rows.any():
            # NULL rows (true value 50) must be scored well above the rest.
            assert scores[null_rows].mean() > scores[~null_rows].mean()


class TestFrameLeftJoinNulls:
    """feature_frame must behave like a left join: fact rows survive
    empty or key-less dimensions as all-NULL features, and models score
    them via missing-direction routing (PR-6 regression: empty parent
    tables used to raise IndexError in the key gather)."""

    def _graph(self, dim_rows):
        db = Database()
        db.create_table(
            "fact", {"k": [0, 1, 2], "local": [1.0, 2.0, 3.0],
                     "yv": [1.0, 2.0, 3.0]}
        )
        db.create_table("dim", dim_rows)
        graph = JoinGraph(db)
        graph.add_relation("fact", features=["local"], y="yv")
        graph.add_relation("dim", features=["feat", "tag"],
                           categorical=["tag"])
        graph.add_edge("fact", "dim", ["k"])
        return db, graph

    def test_empty_dimension_yields_all_null_columns(self):
        from repro.core.predict import feature_frame

        db, graph = self._graph(
            {"k": np.zeros(0, dtype=np.int64), "feat": np.zeros(0),
             "tag": np.array([], dtype=object)}
        )
        frame = feature_frame(db, graph)
        assert np.isnan(frame["feat"]).all()
        assert all(v is None for v in frame["tag"])
        assert np.array_equal(frame["local"], [1.0, 2.0, 3.0])

    def test_all_dangling_keys_yield_all_null_columns(self):
        from repro.core.predict import feature_frame

        db, graph = self._graph(
            {"k": [7, 8], "feat": [1.0, 2.0],
             "tag": np.array(["a", "b"], dtype=object)}
        )
        frame = feature_frame(db, graph)
        assert np.isnan(frame["feat"]).all()
        assert all(v is None for v in frame["tag"])

    def test_model_scores_frame_with_empty_dimension(self):
        """Deploy-time schemas can have cold dimensions; scoring must
        route their NULLs by missing direction, not crash."""
        from repro.core.compile import compile_model
        from repro.core.predict import feature_frame

        rng = np.random.default_rng(9)
        db = Database()
        n = 200
        k = rng.integers(0, 8, n)
        feat = rng.normal(size=8) * 5
        db.create_table(
            "fact", {"k": k, "local": rng.normal(size=n),
                     "yv": feat[k] + rng.normal(0, 0.1, n)}
        )
        db.create_table("dim", {"k": np.arange(8), "feat": feat})
        graph = JoinGraph(db)
        graph.add_relation("fact", features=["local"], y="yv")
        graph.add_relation("dim", features=["feat"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4,
                        "missing": "both"},
        )
        # Serve against a database whose dimension went empty.
        db2 = Database()
        db2.create_table("fact", {"k": k, "local": np.zeros(n),
                                  "yv": np.zeros(n)})
        db2.create_table("dim", {"k": np.zeros(0, dtype=np.int64),
                                 "feat": np.zeros(0)})
        graph2 = JoinGraph(db2)
        graph2.add_relation("fact", features=["local"], y="yv")
        graph2.add_relation("dim", features=["feat"])
        graph2.add_edge("fact", "dim", ["k"])
        frame = feature_frame(db2, graph2, include_target=False)
        scores = model.predict_arrays(frame)
        assert len(scores) == n and np.isfinite(scores).all()
        assert np.array_equal(
            compile_model(model).predict_arrays(frame), scores
        )


class TestBenchReportHelpers:
    def test_format_table(self):
        from repro.bench.report import format_table

        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "== T ==" in text
        assert "2.500" in text

    def test_format_series_alignment(self):
        from repro.bench.report import format_series

        text = format_series("S", "x", [1, 2], {"y": [10.0], "z": [1.0, 2.0]})
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows
