"""Batched frontier evaluation: parity, census, and fallbacks.

The load-bearing claim (ISSUE 2 acceptance): batched mode — one fused
split query per relation per frontier round — grows *identical* trees to
the per-leaf path (and identical rmse to 1e-9) on both the embedded and
sqlite backends, across growth policies, categorical features and
missing-value routing, while issuing at most ``relations x rounds`` split
queries instead of ``nodes x features``.
"""

import numpy as np
import pytest

import repro
from repro.backends import SQLiteConnector
from repro.core.params import TrainParams
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.datasets import favorita, star_schema
from repro.engine.database import Database
from repro.exceptions import TrainingError
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing


def mixed_schema(db):
    """Star schema with a string categorical, numeric nulls, and a local
    fact feature — the awkward-path sampler for parity tests."""
    rng = np.random.default_rng(3)
    n = 1200
    k = rng.integers(0, 40, n)
    color_codes = rng.integers(0, 4, 40)
    colors = np.array(["red", "green", "blue", "teal"], dtype=object)[color_codes]
    dnum = rng.normal(size=40) * 5
    dnum[rng.random(40) < 0.15] = np.nan
    local = rng.integers(0, 50, n).astype(np.float64)
    y = (
        np.where(np.isin(color_codes, [0, 2]), 8.0, -8.0)[k]
        + np.nan_to_num(dnum)[k]
        + 0.1 * local
        + rng.normal(0, 0.2, n)
    )
    db.create_table("fact", {"k": k, "local": local, "yv": y})
    db.create_table("dim", {"k": np.arange(40), "color": colors, "dnum": dnum})
    graph = JoinGraph(db)
    graph.add_relation("fact", features=["local"], y="yv", is_fact=True)
    graph.add_relation("dim", features=["color", "dnum"], categorical=["color"])
    graph.add_edge("fact", "dim", ["k"])
    return db, graph


def trees_of(model):
    return [tree.to_dict() for tree in model.trees]


class TestParity:
    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    @pytest.mark.parametrize("missing", ["right", "both"])
    def test_embedded_parity_mixed_features(self, growth, missing):
        grown = {}
        for mode in ("auto", "off"):
            db, graph = mixed_schema(Database())
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 8, "min_data_in_leaf": 2,
                 "growth": growth, "missing": missing,
                 "split_batching": mode},
            )
            grown[mode] = (trees_of(model), repro.rmse_on_join(db, graph, model))
        assert grown["auto"][0] == grown["off"][0]
        assert grown["auto"][1] == pytest.approx(grown["off"][1], abs=1e-9)

    @pytest.mark.parametrize("growth", ["best-first", "depth-wise"])
    def test_sqlite_parity_mixed_features(self, growth):
        grown = {}
        for mode in ("auto", "off"):
            db, graph = mixed_schema(SQLiteConnector())
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 2,
                 "growth": growth, "missing": "both",
                 "split_batching": mode},
            )
            grown[mode] = (trees_of(model), repro.rmse_on_join(db, graph, model))
        assert grown["auto"][0] == grown["off"][0]
        assert grown["auto"][1] == pytest.approx(grown["off"][1], abs=1e-9)

    def test_cross_backend_parity_batched(self):
        """Batched embedded == batched sqlite, tree for tree."""
        grown = {}
        for name, maker in (("embedded", Database), ("sqlite", SQLiteConnector)):
            db, graph = mixed_schema(maker())
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 2},
            )
            grown[name] = trees_of(model)
        assert grown["embedded"] == grown["sqlite"]

    def test_snowflake_chain_parity(self):
        """Favorita's oil relation sits two hops from the fact: the leaf
        label must be carried through the intermediate dates relation."""
        grown = {}
        for mode in ("auto", "off"):
            db, graph = favorita(
                num_fact_rows=3000, num_extra_features=2, seed=5
            )
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3,
                 "split_batching": mode},
            )
            grown[mode] = trees_of(model)
        assert grown["auto"] == grown["off"]

    def test_single_tree_parity(self, small_star):
        db, graph = small_star
        on = repro.train_decision_tree(
            db, graph, {"num_leaves": 8, "min_data_in_leaf": 3}
        )
        off = repro.train_decision_tree(
            db, graph,
            {"num_leaves": 8, "min_data_in_leaf": 3, "split_batching": "off"},
        )
        assert on.to_dict() == off.to_dict()


class TestCensus:
    def test_batched_query_budget(self):
        """Batched mode issues <= relations x rounds fused split queries;
        per-leaf mode issues nodes x features.  (Pinned to rebuild labels:
        the "frontier" profile tag counts per-round label rebuilds, which
        incremental mode exists to eliminate — see
        tests/test_frontier_incremental.py for that mode's census.)"""
        db, graph = favorita(num_fact_rows=3000, num_extra_features=2, seed=5)
        db.reset_profiles()
        repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
             "frontier_state": "rebuild"},
        )
        counts = {
            tag: len(profiles)
            for tag, profiles in db.profiles_by_tag().items()
        }
        rounds = counts.get("frontier", 0)
        feature_relations = {rel for rel, _ in graph.all_features()}
        assert 0 < rounds <= 6
        assert counts["feature"] <= len(feature_relations) * rounds

        db.reset_profiles()
        repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 6, "min_data_in_leaf": 3,
             "split_batching": "off"},
        )
        off_counts = {
            tag: len(profiles)
            for tag, profiles in db.profiles_by_tag().items()
        }
        assert off_counts["feature"] > counts["feature"]
        assert "frontier" not in off_counts

    def test_evaluator_census_surface(self, tiny_star):
        db, graph = tiny_star
        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(),
            TrainParams.from_dict({"num_leaves": 4}),
        )
        trainer.train()
        census = trainer.evaluator.census()
        assert census["mode"] == "auto"
        assert census["frontier_state"] == "incremental"
        assert census["batched_rounds"] == census["rounds"] > 0
        assert census["incremental_rounds"] == census["batched_rounds"]
        assert census["batched_split_queries"] > 0
        assert census["per_leaf_split_queries"] == 0
        # Incremental labeling: one root pass, zero full-fact rebuilds,
        # two narrow updates per committed split.
        assert census["label_queries"] == 0
        assert census["root_label_passes"] == 1
        assert census["delta_label_updates"] % 2 == 0
        assert census["delta_label_updates"] > 0
        factorizer.cleanup()

    def test_rebuild_census_surface(self, tiny_star):
        db, graph = tiny_star
        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(),
            TrainParams.from_dict(
                {"num_leaves": 4, "frontier_state": "rebuild"}
            ),
        )
        trainer.train()
        census = trainer.evaluator.census()
        assert census["frontier_state"] == "rebuild"
        assert census["batched_rounds"] == census["rounds"] > 0
        assert census["incremental_rounds"] == 0
        assert census["label_queries"] == census["batched_rounds"]
        assert census["root_label_passes"] == 0
        factorizer.cleanup()


class TestModesAndFallbacks:
    def test_off_mode_never_labels(self, tiny_star):
        db, graph = tiny_star
        db.reset_profiles()
        repro.train_decision_tree(
            db, graph, {"num_leaves": 4, "split_batching": "off"}
        )
        assert "frontier" not in db.profiles_by_tag()

    def test_galaxy_schema_falls_back(self, small_imdb):
        """CPT/galaxy trees are per-leaf (fact is not 1-1 with the join);
        auto mode must fall back without error."""
        db, graph = small_imdb
        db.reset_profiles()
        repro.train_gradient_boosting(
            db, graph, {"num_iterations": 1, "num_leaves": 4,
                        "min_data_in_leaf": 3},
        )
        assert "frontier" not in db.profiles_by_tag()

    def _composite_key_schema(self):
        db = Database()
        rng = np.random.default_rng(1)
        n = 400
        k1, k2 = rng.integers(0, 4, n), rng.integers(0, 5, n)
        db.create_table(
            "fact", {"k1": k1, "k2": k2, "yv": rng.normal(size=n)}
        )
        pairs = np.array([(a, b) for a in range(4) for b in range(5)])
        db.create_table(
            "dim",
            {"k1": pairs[:, 0], "k2": pairs[:, 1],
             "f": rng.normal(size=len(pairs))},
        )
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv", is_fact=True)
        graph.add_relation("dim", features=["f"])
        graph.add_edge("fact", "dim", ["k1", "k2"])
        return db, graph

    def test_composite_keys_fall_back_per_leaf(self):
        """Multi-column join keys defeat the semi-join rewrite: auto mode
        must fall back (recording the real reason), 'on' must raise it."""
        db, graph = self._composite_key_schema()
        model = repro.train_decision_tree(db, graph, {"num_leaves": 4})
        assert model.num_leaves > 1  # trained fine, per-leaf
        db2, graph2 = self._composite_key_schema()
        with pytest.raises(TrainingError, match="single-column"):
            repro.train_decision_tree(
                db2, graph2, {"num_leaves": 4, "split_batching": "on"}
            )

    def test_on_mode_raises_for_galaxy(self, small_imdb):
        db, graph = small_imdb
        with pytest.raises(TrainingError, match="batching"):
            repro.train_gradient_boosting(
                db, graph, {"num_iterations": 1, "num_leaves": 4,
                            "min_data_in_leaf": 3, "split_batching": "on"},
            )

    def test_on_mode_works_for_snowflake(self, tiny_star):
        db, graph = tiny_star
        on = repro.train_decision_tree(
            db, graph, {"num_leaves": 4, "split_batching": "on"}
        )
        off = repro.train_decision_tree(
            db, graph, {"num_leaves": 4, "split_batching": "off"}
        )
        assert on.to_dict() == off.to_dict()

    def test_unknown_mode_rejected(self):
        with pytest.raises(TrainingError, match="split_batching"):
            TrainParams.from_dict({"split_batching": "maybe"})

    def test_alias_accepted(self):
        params = TrainParams.from_dict({"batch_splits": "off"})
        assert params.split_batching == "off"


class TestSatelliteFixes:
    def test_empty_components_weight_raises(self):
        from repro.core.split import Criterion

        class Broken(Criterion):
            components = ()

        with pytest.raises(TrainingError, match="no aggregate components"):
            Broken().weight({"c": 1.0})

    def test_cluster_error_lists_known_clusters(self, tiny_star):
        from repro.joingraph.clusters import Cluster

        db, graph = tiny_star
        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        clusters = [Cluster(fact="dim0", members=["dim0"])]
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(),
            TrainParams.from_dict({"num_leaves": 4}), clusters=clusters,
        )
        with pytest.raises(TrainingError) as excinfo:
            trainer._restrict_to_cluster("fact", graph.all_features())
        assert "known clusters" in str(excinfo.value)
        assert "dim0" in str(excinfo.value)
        factorizer.cleanup()


class TestMultiAbsorption:
    def test_carry_through_intermediate_relation(self):
        """jb_leaf-style carry columns propagate across a two-hop chain."""
        db = Database()
        rng = np.random.default_rng(0)
        n = 200
        mid_keys = rng.integers(0, 10, n)
        db.create_table(
            "fact",
            {"mk": mid_keys, "yv": rng.normal(size=n),
             "tag_col": (mid_keys % 2).astype(np.int64)},
        )
        db.create_table(
            "mid", {"mk": np.arange(10), "fk": np.arange(10) % 3}
        )
        db.create_table("far", {"fk": np.arange(3), "f": np.arange(3) * 1.0})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv", is_fact=True)
        graph.add_relation("mid")
        graph.add_relation("far", features=["f"])
        graph.add_edge("fact", "mid", ["mk"])
        graph.add_edge("mid", "far", ["fk"])
        ring = VarianceSemiRing()
        factorizer = Factorizer(db, graph, ring)
        factorizer.lift()
        # Pretend the lifted fact carries a label column already.
        lifted = factorizer.lifted["fact"]
        absorption = factorizer.multi_absorption(
            "far", carry={"fact": ("tag_col",)},
            table_override={"fact": lifted},
        )
        ref = absorption.ref("fact", "tag_col")
        assert ref.endswith(".tag_col") and not ref.startswith("t.")
        agg = ", ".join(
            f"{expr} AS {comp}" for comp, expr in absorption.agg_selects
        )
        result = db.execute(
            f"SELECT {ref} AS tag_col, t.f AS f, {agg} "
            f"{absorption.from_sql} GROUP BY {ref}, t.f"
        )
        # Every (tag, far-feature) combination is aggregated in one pass.
        assert result.num_rows == 6
        total = sum(
            row[result.names.index("c")] for row in (tuple(r) for r in result.rows())
        )
        assert total == n
        for temp in absorption.temp_tables:
            db.drop_table(temp, if_exists=True)
        assert absorption.temp_tables  # carry messages were materialized
        factorizer.cleanup()
