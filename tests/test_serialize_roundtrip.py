"""Canonical JSON round-trips, digests, and malformed-payload hardening.

The serving layer versions deployments by ``model_digest`` — the sha256
of the canonical JSON dump — so the dump must be byte-stable across
dump -> load -> dump, loaded models must compile and score bit-identically,
and broken payloads must surface as :class:`TrainingError`, never a raw
``KeyError``/``TypeError`` from deep inside the deserializer.
"""

import json

import numpy as np
import pytest

import repro
from repro.core.compile import compile_model
from repro.core.predict import feature_frame
from repro.core.serialize import (
    model_digest,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
    tree_from_dict,
)
from repro.exceptions import TrainingError


def _models(db, graph):
    return {
        "tree": repro.train_decision_tree(db, graph, {"num_leaves": 6}),
        "boosting": repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 2}
        ),
        "forest": repro.train_random_forest(
            db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 2}
        ),
    }


class TestByteStability:
    def test_dump_load_dump_is_byte_stable(self, tiny_star):
        db, graph = tiny_star
        for name, model in _models(db, graph).items():
            text = model_to_json(model)
            again = model_to_json(model_from_json(text))
            assert text == again, f"{name} dump is not byte-stable"

    def test_digest_is_stable_and_content_addressed(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4, "seed": 2}
        )
        digest = model_digest(model)
        assert digest == model_digest(model)  # deterministic
        assert digest == model_digest(model_from_json(model_to_json(model)))
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 2}
        )
        assert model_digest(retrained) != digest

    def test_canonical_json_has_sorted_keys_no_spaces(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 4})
        text = model_to_json(model)
        parsed = json.loads(text)
        assert text == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        )


class TestLoadedModelsScore:
    def test_loaded_models_compile_and_score_identically(self, tiny_star):
        db, graph = tiny_star
        frame = feature_frame(db, graph, include_target=False)
        for name, model in _models(db, graph).items():
            loaded = model_from_json(model_to_json(model))
            reference = model.predict_arrays(frame)
            assert np.array_equal(loaded.predict_arrays(frame), reference), name
            assert np.array_equal(
                compile_model(loaded).predict_arrays(frame), reference
            ), name


class TestMalformedPayloads:
    def test_invalid_json_text(self):
        with pytest.raises(TrainingError):
            model_from_json("{not json")

    def test_non_dict_payload(self):
        with pytest.raises(TrainingError):
            model_from_dict([1, 2, 3])
        with pytest.raises(TrainingError):
            tree_from_dict("decision_tree")

    def test_unknown_kind(self):
        with pytest.raises(TrainingError):
            model_from_dict({"kind": "perceptron"})

    def test_truncated_payload_raises_training_error(self, tiny_star):
        """Dropping required keys anywhere in the payload must surface
        as TrainingError, not KeyError."""
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4}
        )
        payload = model_to_dict(model)
        for key in list(payload):
            if key == "kind":
                continue
            broken = {k: v for k, v in payload.items() if k != key}
            with pytest.raises(TrainingError):
                model_from_dict(broken)

    def test_corrupted_tree_node_raises_training_error(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 4})
        payload = model_to_dict(model)
        payload["root"] = {"garbage": True}
        with pytest.raises(TrainingError):
            model_from_dict(payload)
