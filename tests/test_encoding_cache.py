"""Encoded-key cache: version stamps, invalidation, parity, exclusions.

The cache's safety contract is that staleness is *detected*, never
assumed: every mutating storage path bumps a per-column version stamp,
and a lookup under a newer version rejects the cached codes.  These
tests poison and mutate the cache adversarially and assert both the
rejection mechanics and end-to-end tree parity against the cache-off
(pre-PR4) behavior.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.backends.embedded import EmbeddedConnector
from repro.datasets import favorita
from repro.engine import operators as ops
from repro.engine.database import Database
from repro.engine.encodings import EncodingCache
from repro.engine.operators import ColumnEncoding, encode_values
from repro.exceptions import ExecutionError
from repro.storage.column import Column
from repro.storage.table import ColumnTable


def trees_of(model):
    return [tree.to_dict() for tree in model.trees]


PARAMS = {"num_iterations": 2, "num_leaves": 6, "min_data_in_leaf": 3}


def train_pair(seed=6, key_dtype="int", mutate=None, **extra):
    """Train cache-on and cache-off on identical data (optionally mutating
    both databases identically in between) and return both models."""
    models = []
    for mode in ("auto", "off"):
        db, graph = favorita(
            num_fact_rows=2000, num_extra_features=2, seed=seed,
            key_dtype=key_dtype,
        )
        params = {**PARAMS, **extra, "encoding_cache": mode}
        first = repro.train_gradient_boosting(db, graph, params)
        if mutate is None:
            models.append(first)
            continue
        mutate(db)
        models.append(repro.train_gradient_boosting(db, graph, params))
    return models


# ---------------------------------------------------------------------------
# Version stamps in the storage layer
# ---------------------------------------------------------------------------
class TestVersionStamps:
    def test_set_column_bumps_version(self, db):
        db.create_table("t", {"k": [1, 2, 3], "v": [1.0, 2.0, 3.0]})
        table = db.table("t")
        before = table.column_version("v")
        table.set_column(Column("v", np.array([9.0, 8.0, 7.0])))
        assert table.column_version("v") > before
        assert table.column_version("k") < table.column_version("v")

    def test_masked_update_bumps_version(self, db):
        db.create_table("t", {"k": [1, 2, 3], "v": [1.0, 2.0, 3.0]})
        table = db.table("t")
        before = table.column_version("v")
        db.execute("UPDATE t SET v = 0.0 WHERE k = 2")
        assert table.column_version("v") > before

    def test_swap_column_bumps_both_tables(self, db):
        db.create_table("a", {"v": [1.0, 2.0]})
        db.create_table("b", {"w": [3.0, 4.0]})
        ta, tb = db.table("a"), db.table("b")
        va, vb = ta.column_version("v"), tb.column_version("w")
        ta.swap_column("v", tb, "w")
        assert ta.column_version("v") > va
        assert tb.column_version("w") > vb

    def test_rename_preserves_identity(self, db):
        db.create_table("t", {"k": [1, 2, 3]})
        table = db.table("t")
        uid, version = table.uid, table.column_version("k")
        db.rename_table("t", "t2")
        renamed = db.table("t2")
        assert renamed.uid == uid
        assert renamed.column_version("k") == version

    def test_drop_column_forgets_version(self, db):
        db.create_table("t", {"k": [1, 2], "v": [1.0, 2.0]})
        table = db.table("t")
        table.drop_column("v")
        assert table.column_version("v") == 0

    def test_reads_are_provenance_stamped(self, db):
        db.create_table("t", {"k": [1, 2, 3]})
        table = db.table("t")
        col = table.column("k")
        assert col.source == (table.uid, "k", table.column_version("k"))


# ---------------------------------------------------------------------------
# Cache mechanics: staleness rejection, poisoning, LRU, stats
# ---------------------------------------------------------------------------
class TestCacheMechanics:
    def test_stale_version_is_rejected(self):
        cache = EncodingCache()
        encoding = encode_values(np.array([1, 2, 1]))
        cache.store(7, "k", 1, encoding)
        assert cache.lookup(7, "k", 1) is encoding
        assert cache.lookup(7, "k", 2) is None  # version moved on
        assert cache.invalidations == 1
        assert cache.lookup(7, "k", 2) is None  # entry is gone, plain miss
        assert cache.invalidations == 1

    def test_poisoned_entry_rejected_after_mutation(self, db):
        """Adversarial: plant wrong codes under the *current* version,
        mutate the column, and assert the version stamp rejects the
        poison instead of serving it."""
        db.create_table("t", {"k": [1, 2, 3, 4], "v": [0.0] * 4})
        table = db.table("t")
        poison = encode_values(np.array([9, 9, 9, 9]))
        db.encodings.store(table.uid, "k", table.column_version("k"), poison)
        # Served while the version matches (the cache cannot know better)...
        assert db.encodings.encoding_for(table.column("k")) is poison
        # ...but any mutating path bumps the stamp and the poison dies.
        table.set_column(Column("k", np.array([5, 6, 7, 8])))
        recovered = db.encodings.encoding_for(table.column("k"))
        assert recovered is not poison
        assert db.encodings.invalidations >= 1
        np.testing.assert_array_equal(recovered.codes, [0, 1, 2, 3])

    def test_stale_reference_cannot_clobber_newer_entry(self, db):
        """A column reference captured before a mutation must neither
        evict nor overwrite the current-version entry (no ping-pong)."""
        db.create_table("t", {"k": [1, 2, 3]})
        table = db.table("t")
        old_col = table.column("k")  # stamped with the pre-mutation version
        table.set_column(Column("k", np.array([4, 5, 6])))
        fresh = db.encodings.encoding_for(table.column("k"))
        assert fresh is not None
        current = table.column_version("k")
        # The stale reference encodes its own (old) data but must not
        # touch the cached entry for the current version.
        stale = db.encodings.encoding_for(old_col)
        assert stale is not fresh
        assert db.encodings.lookup(table.uid, "k", current) is fresh

    def test_poisoned_length_mismatch_rejected(self, db):
        db.create_table("t", {"k": [1, 2, 3, 4]})
        table = db.table("t")
        wrong_size = encode_values(np.array([1, 2]))
        db.encodings.store(table.uid, "k", table.column_version("k"), wrong_size)
        assert db.encodings.encoding_for(table.column("k")) is None

    def test_lru_eviction_by_bytes(self):
        cache = EncodingCache(max_bytes=16384)
        big = np.arange(200)
        for i in range(10):
            cache.store(i, "k", 1, encode_values(big))
        assert cache.bytes <= cache.max_bytes
        assert cache.evictions > 0
        assert cache.lookup(0, "k", 1) is None  # oldest evicted first
        assert cache.lookup(9, "k", 1) is not None

    def test_disabled_cache_returns_none(self, db):
        db.create_table("t", {"k": [1, 2, 3]})
        db.encodings.enabled = False
        assert db.encodings.encoding_for(db.table("t").column("k")) is None

    def test_drop_table_invalidates(self, db):
        db.create_table("t", {"k": [1, 2, 3]})
        table = db.table("t")
        assert db.encodings.encoding_for(table.column("k")) is not None
        before = db.encodings.invalidations
        db.drop_table("t")
        assert db.encodings.invalidations > before


# ---------------------------------------------------------------------------
# Encoding correctness (codes match the uncached operators)
# ---------------------------------------------------------------------------
class TestEncodingEquivalence:
    @pytest.mark.parametrize("values", [
        np.array([3, 1, 2, 1, 3]),
        np.array([1.5, np.nan, 0.0, 1.5, np.nan]),
        np.array(["b", None, "a", "b", None], dtype=object),
        np.array([], dtype=object),
        np.array([7]),
    ])
    def test_factorize_groups_match(self, values):
        """Grouping through encode_values' triple gives exactly the groups
        the raw factorize produces (order, membership, representatives)."""
        raw = ops.factorize([values])
        via = ops.factorize_parts([encode_values(values).triple()])
        np.testing.assert_array_equal(raw[0], via[0])
        assert raw[1] == via[1]
        np.testing.assert_array_equal(raw[2], via[2])
        np.testing.assert_array_equal(raw[3], via[3])

    @pytest.mark.parametrize("left,right", [
        (np.array([1, 2, 3, 2]), np.array([2, 3, 9])),
        (np.array(["a", "c", "b"], dtype=object),
         np.array(["b", "b", "z"], dtype=object)),
        (np.array([1.0, np.nan, 2.0]), np.array([2.0, np.nan])),
    ])
    def test_join_matches_with_and_without_encodings(self, left, right):
        plain = ops.join_indices([left], [right], how="full")
        encoded = ops.join_indices(
            [left], [right], how="full",
            left_encodings=[encode_values(left)],
            right_encodings=[encode_values(right)],
        )
        np.testing.assert_array_equal(plain[0], encoded[0])
        np.testing.assert_array_equal(plain[1], encoded[1])

    def test_multi_column_composed_join(self):
        left = [np.array([1, 1, 2, 2]), np.array(["x", "y", "x", "y"], dtype=object)]
        right = [np.array([1, 2, 2]), np.array(["y", "x", "q"], dtype=object)]
        plain = ops.join_indices(left, right)
        encoded = ops.join_indices(
            left, right,
            left_encodings=[encode_values(a) for a in left],
            right_encodings=[encode_values(a) for a in right],
        )
        np.testing.assert_array_equal(plain[0], encoded[0])
        np.testing.assert_array_equal(plain[1], encoded[1])

    def test_gather_and_filter_propagation(self):
        values = np.array(["c", "a", None, "b", "a"], dtype=object)
        encoding = encode_values(values)
        idx = np.array([4, 0, 2, 2, 1])
        gathered = encoding.take(idx)
        reference = encode_values(values[idx])
        group_g = ops.factorize_parts([gathered.triple()])
        group_r = ops.factorize_parts([reference.triple()])
        np.testing.assert_array_equal(group_g[0], group_r[0])
        mask = np.array([True, False, True, True, False])
        filtered = encoding.filter(mask)
        np.testing.assert_array_equal(
            ops.factorize_parts([filtered.triple()])[0],
            ops.factorize([values[mask]])[0],
        )

    def test_empty_side_join_with_encodings(self):
        """An empty (or all-null) side has a placeholder code covered by
        no dictionary entry; the merged maps must route it to the null
        slot, never through uninitialized memory."""
        left = np.array([1, 2, 3])
        empty = np.array([], dtype=np.int64)
        for how in ("inner", "left", "full"):
            plain = ops.join_indices([left], [empty], how=how)
            encoded = ops.join_indices(
                [left], [empty], how=how,
                left_encodings=[encode_values(left)],
                right_encodings=[encode_values(empty)],
            )
            np.testing.assert_array_equal(plain[0], encoded[0])
            np.testing.assert_array_equal(plain[1], encoded[1])

    def test_masked_key_join_parity(self):
        """Legacy joins match on raw stored values, ignoring validity
        masks; the planner must not swap in valid-aware encodings for
        masked key columns (cache on/off would disagree on which rows
        join)."""
        from repro.storage.column import ColumnType

        results = []
        for enabled in (True, False):
            db = Database()
            db.create_table("l", {"k": [9, 9, 9, 9],
                                  "v": [1.0, 2.0, 3.0, 4.0]})
            db.table("l").set_column(Column(
                "k", np.array([1, 2, 0, 4]), ColumnType.INT,
                np.array([True, True, False, True]),
            ))
            db.create_table("r", {"k": [0, 1], "x": [10.0, 20.0]})
            db.encodings.enabled = enabled
            out = db.execute(
                "SELECT l.v AS v, r.x AS x FROM l JOIN r ON l.k = r.k "
                "ORDER BY l.v"
            )
            results.append((out["v"].tolist(), out["x"].tolist()))
        assert results[0] == results[1]

    def test_vectorized_null_detection(self):
        values = np.array(["x", None, "", "None", None], dtype=object)
        comparable, nulls = ops._normalize_key(values)
        np.testing.assert_array_equal(nulls, [False, True, False, False, True])
        # The original values are untouched (copy-on-write).
        assert values[1] is None


# ---------------------------------------------------------------------------
# End-to-end parity: cached training must grow identical trees
# ---------------------------------------------------------------------------
class TestTrainingParity:
    def test_parity_clean_run(self):
        on, off = train_pair()
        assert trees_of(on) == trees_of(off)

    def test_parity_string_keys(self):
        on, off = train_pair(key_dtype="str")
        assert trees_of(on) == trees_of(off)

    def test_parity_after_narrow_update(self):
        """A narrow UPDATE of a dimension feature between trainings must
        invalidate that column's codes — retraining sees the new data."""
        def mutate(db):
            db.execute("UPDATE items SET f_items = f_items + 100 "
                       "WHERE item_id <= 100")
        on, off = train_pair(mutate=mutate)
        assert trees_of(on) == trees_of(off)

    def test_parity_after_replace_column(self):
        def mutate(db):
            values = db.table("stores").column("f_stores").values * 2.0
            db.replace_column("stores", "f_stores", values, strategy="update")
        on, off = train_pair(mutate=mutate)
        assert trees_of(on) == trees_of(off)

    def test_parity_after_rename_roundtrip(self):
        """Catalog renames preserve identity: cached codes stay valid, and
        a mutation after the rename still invalidates them."""
        def mutate(db):
            db.rename_table("trans", "trans_tmp")
            db.rename_table("trans_tmp", "trans")
            db.execute("UPDATE trans SET f_trans = f_trans * 3")
        on, off = train_pair(mutate=mutate)
        assert trees_of(on) == trees_of(off)

    def test_parity_through_midtraining_degrade(self):
        """A delta-update failure mid-training flips the frontier to
        rebuild labels; the cache must keep rejecting stale codes through
        the mode switch (label columns churn differently afterwards)."""
        models = []
        for mode in ("auto", "off"):
            db, graph = favorita(
                num_fact_rows=2000, num_extra_features=0, seed=6
            )
            real_execute = db.execute
            fired = {"n": 0}

            def flaky(sql, tag=None, _real=real_execute, _fired=fired):
                if tag == "frontier_delta" and _fired["n"] == 0:
                    _fired["n"] += 1
                    raise ExecutionError("injected delta failure")
                return _real(sql, tag=tag)

            db.execute = flaky
            models.append(repro.train_gradient_boosting(
                db, graph, {**PARAMS, "encoding_cache": mode}
            ))
            assert fired["n"] == 1
        assert trees_of(models[0]) == trees_of(models[1])

    def test_parity_without_narrow_update_capability(self):
        models = []
        for mode in ("auto", "off"):
            conn = EmbeddedConnector()
            conn.capabilities = dataclasses.replace(
                conn.capabilities, narrow_update=False
            )
            db, graph = favorita(
                db=conn, num_fact_rows=2000, num_extra_features=0, seed=6
            )
            models.append(repro.train_gradient_boosting(
                db, graph, {**PARAMS, "encoding_cache": mode}
            ))
        assert trees_of(models[0]) == trees_of(models[1])


# ---------------------------------------------------------------------------
# Frontier interaction and census surfacing
# ---------------------------------------------------------------------------
class TestIntegration:
    def test_jb_leaf_column_stays_uncached(self):
        db, graph = favorita(num_fact_rows=2000, num_extra_features=0, seed=6)
        model = repro.train_gradient_boosting(db, graph, PARAMS)
        assert model.trees  # trained through the incremental frontier
        uncached = db.encodings._uncached
        assert any(name.startswith("jb_leaf") for _, name in uncached)
        for (uid, name) in uncached:
            assert (uid, name) not in db.encodings._entries

    def test_cache_reduces_encode_passes(self):
        db, graph = favorita(num_fact_rows=2000, num_extra_features=2, seed=6)
        ops.reset_encode_census()
        repro.train_gradient_boosting(db, graph, PARAMS)
        cached_passes = ops.encode_census()["passes"]
        db2, graph2 = favorita(num_fact_rows=2000, num_extra_features=2, seed=6)
        ops.reset_encode_census()
        repro.train_gradient_boosting(
            db2, graph2, {**PARAMS, "encoding_cache": "off"}
        )
        uncached_passes = ops.encode_census()["passes"]
        assert cached_passes < uncached_passes / 2
        assert db.encodings.stores > 0

    def test_profiles_carry_encode_split(self):
        db = Database()
        db.create_table("t", {"k": [1, 2, 2, 3], "v": [1.0, 2.0, 3.0, 4.0]})
        db.encodings.enabled = False
        db.execute("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        profile = db.profiles[-1]
        assert profile.encode_passes > 0
        assert 0.0 <= profile.encode_seconds <= profile.seconds + 1e-6

    def test_warm_encodings_precomputes_join_keys(self):
        db, graph = favorita(num_fact_rows=1000, num_extra_features=0, seed=6)
        from repro.factorize.executor import Factorizer
        from repro.semiring.variance import VarianceSemiRing

        factorizer = Factorizer(db, graph, VarianceSemiRing())
        factorizer.lift()
        warmed = factorizer.warm_encodings()
        # A shared key (dates.date_id serves both the sales and oil edges)
        # warms once but counts per edge, so stores <= warmed.
        assert warmed > 0
        assert 0 < db.encodings.stores <= warmed
        factorizer.cleanup()

    def test_compressed_storage_trains_with_cache(self):
        """Compressed presets decode fresh columns per read; the cache must
        still key them correctly (and stay parity-safe)."""
        from repro.storage.table import StorageConfig

        models = []
        for mode in ("auto", "off"):
            db, graph = favorita(
                db=Database(config=StorageConfig.preset("plain")),
                num_fact_rows=1500, num_extra_features=0, seed=3,
                fact_config=StorageConfig.preset("x-col"),
            )
            models.append(repro.train_gradient_boosting(
                db, graph, {**PARAMS, "encoding_cache": mode,
                            "update_strategy": "create"}
            ))
        assert trees_of(models[0]) == trees_of(models[1])


# ---------------------------------------------------------------------------
# SQLite training-setup satellite: join-key indexes + ANALYZE
# ---------------------------------------------------------------------------
class TestSQLiteIndexes:
    def test_indexes_created_and_profiled(self):
        from repro.backends.sqlite3_backend import SQLiteConnector

        db, graph = favorita(
            db=SQLiteConnector(), num_fact_rows=1500, num_extra_features=0,
            seed=6,
        )
        model = repro.train_gradient_boosting(db, graph, PARAMS)
        assert model.trees
        assert db.index_seconds > 0.0
        index_profiles = [p for p in db.profiles if p.tag == "index"]
        assert index_profiles and index_profiles[0].rows_out > 0
        names = [r[0] for r in db._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name LIKE 'jb_idx_%'"
        )]
        assert names  # dimension-side indexes persist past training

    def test_prepare_training_idempotent(self):
        from repro.backends.sqlite3_backend import SQLiteConnector

        db, graph = favorita(
            db=SQLiteConnector(), num_fact_rows=500, num_extra_features=0,
            seed=6,
        )
        first = db.prepare_training(graph)
        db.prepare_training(graph)
        assert first >= 0.0
        # First call records the per-connection perf PRAGMAs and the
        # index build under the "index" tag; the second call finds
        # nothing to do and records nothing.
        index_profiles = [p for p in db.profiles if p.tag == "index"]
        assert [p.kind for p in index_profiles] == ["Pragma", "Index"]
        pragma_profile = index_profiles[0]
        assert "temp_store=MEMORY" in pragma_profile.sql
        assert "cache_size" in pragma_profile.sql
        assert "mmap_size" in pragma_profile.sql


# ---------------------------------------------------------------------------
# Concurrency: the scheduler's worker threads race get-or-compute
# ---------------------------------------------------------------------------
class TestConcurrency:
    def test_racing_get_or_compute_stores_once(self, db):
        """N threads racing one (uid, column, version) key must produce
        exactly one encode pass: a single miss + store for the winner,
        hits for everyone else — the lock makes the whole
        lookup -> encode -> store sequence atomic."""
        import threading

        n = 20_000
        db.create_table("t", {"k": np.arange(n) % 512})
        table = db.table("t")
        cache = db.encodings
        assert cache.stores == 0 and cache.misses == 0

        num_threads = 8
        barrier = threading.Barrier(num_threads)
        encodings, errors = [], []

        def race():
            # Each thread gets an *independent* column reference with the
            # same provenance stamp: the storage layer hands out one
            # shared Column object, whose .enc memoization would let late
            # threads bypass the cache instead of racing it.
            col = table.column("k").copy()
            col.enc = None
            barrier.wait()
            try:
                encodings.append(cache.encoding_for(col))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert cache.stores == 1  # census: the key computed exactly once
        assert cache.misses == 1
        assert cache.hits == num_threads - 1
        # Every thread got the same (single) stored encoding object.
        assert len({id(e) for e in encodings}) == 1
        np.testing.assert_array_equal(
            encodings[0].codes, np.arange(n) % 512
        )

    def test_poisoning_and_invalidation_hold_under_the_lock(self, db):
        """Concurrent readers racing a mutator never resurrect a stale
        entry: after every thread finishes, the cache serves the codes of
        the *current* version and the poison is gone."""
        import threading

        db.create_table("t", {"k": np.array([1, 2, 3, 4])})
        table = db.table("t")
        cache = db.encodings
        poison = encode_values(np.array([9, 9, 9, 9]))
        cache.store(table.uid, "k", table.column_version("k"), poison)

        barrier = threading.Barrier(9)
        errors = []

        def read():
            barrier.wait()
            try:
                for _ in range(50):
                    cache.encoding_for(table.column("k"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def mutate():
            barrier.wait()
            try:
                for v in range(50):
                    table.set_column(Column("k", np.array([v, v + 1, v + 2, v + 3])))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=read) for _ in range(8)]
        threads.append(threading.Thread(target=mutate))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        final = cache.encoding_for(table.column("k"))
        assert final is not poison
        np.testing.assert_array_equal(final.codes, [0, 1, 2, 3])
        # The stale-version entry was invalidated, not silently served.
        assert cache.invalidations >= 1

    def test_mark_uncached_during_race_sticks(self, db):
        """mark_uncached with readers in flight: once marked, the column
        never re-enters the cache (the frontier's jb_leaf exemption)."""
        import threading

        db.create_table("t", {"k": np.array([1, 2, 3, 4])})
        table = db.table("t")
        cache = db.encodings
        barrier = threading.Barrier(5)

        def read():
            barrier.wait()
            for _ in range(50):
                cache.encoding_for(table.column("k"))

        def mark():
            barrier.wait()
            cache.mark_uncached(table.uid, "k")

        threads = [threading.Thread(target=read) for _ in range(4)]
        threads.append(threading.Thread(target=mark))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not cache.cacheable(table.uid, "k")
        assert cache.encoding_for(table.column("k")) is None
        assert cache.lookup(table.uid, "k", table.column_version("k")) is None
