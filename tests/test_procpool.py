"""Supervised process pool: payload contracts and crash supervision (ISSUE 9).

The acceptance bar for the executor axis: task results come back in
submission order whatever the completion order; a chaos-crashed or
stalled worker is detected, killed, respawned and its task re-dispatched
within bounded budgets; and the serialized task payloads produce results
bit-identical to running the same statement in-process.
"""

import os
import time

import numpy as np
import pytest

import repro
from repro.engine.procpool import (
    CRASH_EXIT_CODE,
    DEFAULT_TASK_DEADLINE,
    SupervisedProcessPool,
    ProcPoolCensus,
    TaskOutcome,
    WorkerTask,
    default_task_deadline,
    execute_task_payload,
    get_shared_pool,
)
from repro.exceptions import (
    BackendError,
    BackendExecutionError,
    TransientBackendError,
)

from conftest import backend_matrix


# --------------------------------------------------------------------------
# Module-level task functions (must be importable from worker processes)
# --------------------------------------------------------------------------
def _double(x):
    return 2 * x


def _slow_identity(x, seconds):
    time.sleep(seconds)
    return x


def _fail_once_then(value, marker_path):
    """Transient failure on the first attempt, success after."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("seen")
        raise TransientBackendError("first attempt fails")
    return value


def _always_transient():
    raise TransientBackendError("never succeeds")


def _always_value_error():
    raise ValueError("genuine bug")


def _callable_task(task_id, fn, *args):
    return WorkerTask(
        task_id=task_id, payload={"kind": "callable", "fn": fn, "args": args}
    )


# --------------------------------------------------------------------------
# Payload execution (the child-side contract, callable in-process too)
# --------------------------------------------------------------------------
class TestPayloadExecution:
    def test_callable_payload(self):
        assert execute_task_payload(
            {"kind": "callable", "fn": _double, "args": (21,)}
        ) == 42

    def test_unknown_kind_raises(self):
        with pytest.raises(BackendError, match="unknown task payload"):
            execute_task_payload({"kind": "teleport"})

    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    def test_serialized_read_matches_inprocess(self, backend):
        """A spec'd read executed via the payload path is bit-identical
        to the connector's own execution of the same statement."""
        conn = repro.connect(backend=backend)
        rng = np.random.default_rng(1)
        values = rng.normal(size=50)
        values[7] = np.nan
        conn.create_table("t", {"k": np.arange(50) % 5, "v": values})
        sql = "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k ORDER BY k"
        spec = conn.process_task_payload(sql)
        if spec is None:
            pytest.skip(f"{backend} backend declines process tasks")
        parent = conn.execute(sql)
        child = execute_task_payload(spec)
        assert [c.name for c in child.columns()] == [
            c.name for c in parent.columns()
        ]
        for col in parent.columns():
            np.testing.assert_array_equal(
                child.column(col.name).values, col.values
            )

    def test_multi_statement_declined(self):
        conn = repro.connect(backend="sqlite")
        conn.create_table("t", {"v": np.arange(4, dtype=np.float64)})
        assert conn.process_task_payload("SELECT 1; SELECT 2") is None

    def test_embedded_ships_only_tables_the_query_reads(self):
        """A table named only inside a string literal is not shipped."""
        conn = repro.connect(backend="plain")
        conn.create_table("t", {"v": np.arange(4, dtype=np.float64)})
        conn.create_table("decoy", {"v": np.arange(4, dtype=np.float64)})
        spec = conn.process_task_payload(
            "SELECT COUNT(*) AS n FROM t WHERE 'decoy' <> v"
        )
        assert spec is not None
        assert set(spec["tables"]) == {"t"}

    def test_embedded_unresolvable_table_declines(self):
        """A statement naming a table the catalog cannot resolve runs
        inline on the owner instead of failing inside a child."""
        conn = repro.connect(backend="plain")
        conn.create_table("t", {"v": np.arange(4, dtype=np.float64)})
        assert conn.process_task_payload("SELECT v FROM missing") is None

    def test_write_statement_declined(self):
        conn = repro.connect(backend="sqlite")
        conn.create_table("t", {"v": np.arange(4, dtype=np.float64)})
        assert conn.process_task_payload("DELETE FROM t") is None


# --------------------------------------------------------------------------
# Supervision mechanics
# --------------------------------------------------------------------------
class TestSupervisedPool:
    def test_results_in_submission_order(self):
        """The slowest task is submitted first; results still come back
        in submission order, not completion order."""
        with SupervisedProcessPool(2) as pool:
            tasks = [
                _callable_task(0, _slow_identity, "slow", 0.3),
                _callable_task(1, _slow_identity, "fast", 0.0),
                _callable_task(2, _double, 5),
            ]
            outcomes = pool.run(tasks)
        assert [o.task_id for o in outcomes] == [0, 1, 2]
        assert [o.result for o in outcomes] == ["slow", "fast", 10]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_worker_crash_recovered(self):
        census = ProcPoolCensus()
        with SupervisedProcessPool(2) as pool:
            tasks = [
                WorkerTask(
                    task_id=0,
                    payload={"kind": "callable", "fn": _double, "args": (3,)},
                    tag="victim",
                    chaos="worker_crash",
                ),
                _callable_task(1, _double, 4),
            ]
            outcomes = pool.run(tasks, census=census)
        assert [o.result for o in outcomes] == [6, 8]
        victim = outcomes[0]
        assert victim.attempts == 2 and victim.redispatches == 1
        counts = census.snapshot()
        assert counts["worker_crashes"] >= 1
        assert counts["tasks_redispatched"] == 1
        assert counts["respawns"] >= 1

    def test_stall_hits_deadline_and_recovers(self):
        census = ProcPoolCensus()
        with SupervisedProcessPool(2, deadline_s=0.5) as pool:
            outcomes = pool.run(
                [
                    WorkerTask(
                        task_id=0,
                        payload={
                            "kind": "callable", "fn": _double, "args": (3,),
                        },
                        tag="sleeper",
                        chaos="stall",
                    )
                ],
                census=census,
            )
        outcome = outcomes[0]
        assert outcome.ok and outcome.result == 6
        assert outcome.timed_out
        assert outcome.redispatches == 1
        assert census.snapshot()["deadline_timeouts"] == 1

    def test_transient_error_retried(self, tmp_path):
        marker = str(tmp_path / "marker")
        census = ProcPoolCensus()
        with SupervisedProcessPool(1) as pool:
            outcomes = pool.run(
                [_callable_task(0, _fail_once_then, "ok", marker)],
                census=census,
            )
        assert outcomes[0].ok and outcomes[0].result == "ok"
        assert outcomes[0].attempts == 2
        assert census.snapshot()["task_retries"] == 1

    def test_transient_budget_exhausts_into_error(self):
        with SupervisedProcessPool(1, max_redispatches=1) as pool:
            outcomes = pool.run([_callable_task(0, _always_transient)])
        outcome = outcomes[0]
        assert not outcome.ok
        assert isinstance(outcome.error, TransientBackendError)
        # one original dispatch + one retry, stamped on the error
        assert outcome.attempts == 2
        assert getattr(outcome.error, "attempts") == 2

    def test_non_transient_error_not_retried(self):
        with SupervisedProcessPool(1) as pool:
            outcomes = pool.run([_callable_task(0, _always_value_error)])
        outcome = outcomes[0]
        assert isinstance(outcome.error, ValueError)
        assert outcome.attempts == 1

    def test_dead_pipe_at_dispatch_runs_task_once(self):
        """A worker that died while idle fails the dispatch send; the
        task must be re-queued exactly once (never double-queued) and
        every outcome must carry a real result."""
        census = ProcPoolCensus()
        with SupervisedProcessPool(2) as pool:
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            tasks = [_callable_task(i, _double, i) for i in range(4)]
            outcomes = pool.run(tasks, census=census)
        assert [o.result for o in outcomes] == [0, 2, 4, 6]
        assert all(o.ok for o in outcomes)
        assert census.snapshot()["tasks_completed"] == 4
        # the pool is left clean for its next run
        assert all(w.idle for w in pool._workers)

    def test_pool_survives_across_runs(self):
        with SupervisedProcessPool(2) as pool:
            first = pool.run([_callable_task(0, _double, 1)])
            second = pool.run([_callable_task(0, _double, 2)])
        assert first[0].result == 2 and second[0].result == 4

    def test_closed_pool_rejects_work(self):
        pool = SupervisedProcessPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(BackendExecutionError, match="closed"):
            pool.run([_callable_task(0, _double, 1)])

    def test_shared_pool_reused_by_worker_count(self):
        pool = get_shared_pool(2)
        assert get_shared_pool(2) is pool
        assert not pool._closed

    def test_crash_exit_code_is_distinctive(self):
        # not a Python-traceback exit, not a signal death
        assert CRASH_EXIT_CODE not in (0, 1) and CRASH_EXIT_CODE > 0


class TestDeadlineConfig:
    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("JOINBOOST_TASK_DEADLINE", "7.5")
        assert default_task_deadline() == 7.5

    def test_bad_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("JOINBOOST_TASK_DEADLINE", "not-a-number")
        assert default_task_deadline() == DEFAULT_TASK_DEADLINE
        monkeypatch.setenv("JOINBOOST_TASK_DEADLINE", "-3")
        assert default_task_deadline() == DEFAULT_TASK_DEADLINE

    def test_outcome_defaults(self):
        outcome = TaskOutcome(task_id=9)
        assert outcome.ok and not outcome.timed_out
        assert outcome.attempts == 0 and outcome.redispatches == 0
