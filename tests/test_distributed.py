"""Distributed simulation: partitioning and multi-node training."""

import numpy as np
import pytest

import repro
from repro.core.predict import feature_frame
from repro.datasets import star_schema
from repro.distributed import (
    ClusterConfig,
    SimulatedCluster,
    hash_partition_table,
    partition_database,
)


class TestPartitioning:
    def test_partitions_cover_all_rows(self, small_star):
        db, graph = small_star
        parts = hash_partition_table(db, "fact", "k0", 4)
        total = sum(len(p["k0"]) for p in parts)
        assert total == db.table("fact").num_rows()

    def test_partitioning_is_by_key(self, small_star):
        db, graph = small_star
        parts = hash_partition_table(db, "fact", "k0", 3)
        seen = {}
        for p, part in enumerate(parts):
            for key in np.unique(part["k0"]):
                assert seen.setdefault(int(key), p) == p

    def test_dimensions_replicated(self, small_star):
        db, graph = small_star
        workers, worker_graphs = partition_database(db, graph, 2, "k0")
        for worker in workers:
            assert worker.table("dim0").num_rows() == db.table("dim0").num_rows()


class TestSimulatedCluster:
    def test_distributed_equals_single_node(self):
        db, graph = star_schema(num_fact_rows=4000, num_dims=2, seed=2)
        cluster = SimulatedCluster(
            db, graph, "k0", ClusterConfig(num_machines=4)
        )
        distributed, _ = cluster.train_gradient_boosting(
            {"num_iterations": 3, "num_leaves": 4, "learning_rate": 0.5}
        )
        single = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "learning_rate": 0.5},
        )
        frame = feature_frame(db, graph)
        assert np.allclose(
            distributed.predict_arrays(frame), single.predict_arrays(frame)
        )

    def test_shuffle_bytes_accounted(self):
        db, graph = star_schema(num_fact_rows=2000, num_dims=2, seed=3)
        cluster = SimulatedCluster(db, graph, "k0", ClusterConfig(num_machines=2))
        _, seconds = cluster.train_gradient_boosting(
            {"num_iterations": 1, "num_leaves": 4}
        )
        assert cluster.shuffle_bytes > 0
        assert seconds > 0

    def test_slower_network_costs_more(self):
        db, graph = star_schema(num_fact_rows=2000, num_dims=2, seed=3)
        fast = SimulatedCluster(
            db, graph, "k0",
            ClusterConfig(num_machines=2, bandwidth_bytes_per_s=1e9),
        )
        _, fast_seconds = fast.train_gradient_boosting(
            {"num_iterations": 1, "num_leaves": 4}
        )
        slow = SimulatedCluster(
            db, graph, "k0",
            ClusterConfig(num_machines=2, bandwidth_bytes_per_s=1e4),
        )
        _, slow_seconds = slow.train_gradient_boosting(
            {"num_iterations": 1, "num_leaves": 4}
        )
        assert slow_seconds > fast_seconds

    def test_decision_tree_distributed(self):
        db, graph = star_schema(num_fact_rows=2000, num_dims=2, seed=4)
        cluster = SimulatedCluster(db, graph, "k0", ClusterConfig(num_machines=2))
        tree, seconds = cluster.train_decision_tree({"num_leaves": 8})
        assert tree.num_leaves == 8
        single = repro.train_decision_tree(db, graph, {"num_leaves": 8})
        assert tree.dump() == single.dump()

    def test_rejects_non_rmse(self):
        db, graph = star_schema(num_fact_rows=500, num_dims=1, seed=5)
        cluster = SimulatedCluster(db, graph, "k0", ClusterConfig(num_machines=2))
        from repro.exceptions import TrainingError

        with pytest.raises(TrainingError):
            cluster.train_gradient_boosting({"objective": "l1"})
