"""Algebraic property tests (hypothesis) for the semi-ring library.

These verify the paper's Tables 1-2 definitions and the central
Definition 1 / Proposition 4.1 arguments:

* all semi-rings satisfy the commutative semi-ring axioms;
* the variance and gradient lifts are addition-to-multiplication
  preserving (hence rmse residual updates factorize);
* the naive mae sign structure is NOT (the paper's counterexample);
* updating an aggregate by ⊗ lift(-p) equals re-lifting the residuals.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SemiRingError
from repro.semiring import (
    ClassCountSemiRing,
    GradientSemiRing,
    MulticlassGradientSemiRing,
    SignSemiRing,
    VarianceSemiRing,
    check_semiring_axioms,
    get_semiring,
    is_addition_to_multiplication_preserving,
)
from repro.semiring.properties import residual_update_matches_relift

floats = st.floats(-50, 50, allow_nan=False)


def elements_for(ring, values):
    """Sample elements: lifted values plus 0/1."""
    out = [ring.zero(), ring.one()]
    for v in values:
        try:
            out.append(ring.lift(v))
        except SemiRingError:
            pass
    return out


class TestAxioms:
    @pytest.mark.parametrize(
        "ring",
        [
            VarianceSemiRing(),
            VarianceSemiRing(include_q=True),
            GradientSemiRing(),
            GradientSemiRing(suffix="3"),
            ClassCountSemiRing(3),
            MulticlassGradientSemiRing(3),
        ],
        ids=lambda r: f"{r.name}-{len(r.components)}",
    )
    def test_axioms_hold(self, ring):
        if ring.name in ("classcount", "multiclass_gradient"):
            sample = [0, 1, 2]
        else:
            sample = [-2.5, 0.0, 1.0, 3.25]
        violations = check_semiring_axioms(ring, elements_for(ring, sample))
        assert violations == []

    @given(st.lists(floats, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_variance_axioms_property(self, values):
        ring = VarianceSemiRing(include_q=True)
        assert check_semiring_axioms(ring, elements_for(ring, values)) == []


class TestAdditionToMultiplicationPreserving:
    @given(st.lists(floats, min_size=2, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_variance_preserving(self, values):
        assert is_addition_to_multiplication_preserving(
            VarianceSemiRing(include_q=True), values
        )

    @given(st.lists(floats, min_size=2, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_gradient_preserving(self, values):
        assert is_addition_to_multiplication_preserving(GradientSemiRing(), values)

    def test_sign_semiring_is_not_preserving(self):
        # The paper's mae counterexample: sign(3 + (-1)) != "sign algebra".
        assert not is_addition_to_multiplication_preserving(
            SignSemiRing(), [3.0, -1.0]
        )

    @given(st.lists(floats, min_size=3, max_size=8), floats)
    @settings(max_examples=60, deadline=None)
    def test_proposition_4_1(self, ys, pred):
        """⊗ lift(-p) on the aggregate == re-lift of residuals."""
        assert residual_update_matches_relift(
            VarianceSemiRing(include_q=True), ys, pred, tol=1e-5
        )
        assert residual_update_matches_relift(GradientSemiRing(), ys, pred, tol=1e-5)


class TestVarianceStatistics:
    @given(st.lists(floats, min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_recovers_variance(self, ys):
        ring = VarianceSemiRing(include_q=True)
        agg = ring.zero()
        for y in ys:
            agg = ring.add(agg, ring.lift(y))
        c, s, q = agg
        assert ring.variance(c, s, q) == pytest.approx(
            float(np.var(ys) * len(ys)), abs=1e-6
        )

    def test_paper_example_1(self):
        """γ(R⋈) = (8, 16, 36), variance = 4 (the paper's Example 1)."""
        ring = VarianceSemiRing(include_q=True)
        values = [2, 2, 3, 1, 1, 3, 2, 2]
        agg = ring.zero()
        for y in values:
            agg = ring.add(agg, ring.lift(y))
        assert agg == (8, 16, 36)
        assert ring.variance(*agg) == pytest.approx(4.0)


class TestClassCount:
    def test_lift_one_hot(self):
        ring = ClassCountSemiRing(3)
        assert ring.lift(1) == (1, 0, 1, 0)

    def test_lift_out_of_range(self):
        with pytest.raises(SemiRingError):
            ClassCountSemiRing(2).lift(5)

    def test_gini_pure_node_is_zero(self):
        assert ClassCountSemiRing.gini((5, 5, 0)) == 0.0

    def test_entropy_balanced_is_max(self):
        balanced = ClassCountSemiRing.entropy((4, 2, 2))
        skewed = ClassCountSemiRing.entropy((4, 3, 1))
        assert balanced > skewed

    def test_chi_square_independent_is_zero(self):
        stat = ClassCountSemiRing.chi_square((4, 2, 2), (4, 2, 2))
        assert stat == pytest.approx(0.0)

    def test_mode(self):
        assert ClassCountSemiRing(3).mode((5, 1, 3, 1)) == 1


class TestSQLFace:
    def test_registry(self):
        assert get_semiring("variance").name == "variance"
        assert get_semiring("gradient", suffix="2").components == ("h2", "g2")
        with pytest.raises(SemiRingError):
            get_semiring("quaternion")

    def test_variance_multiply_sql_mentions_components(self):
        ring = VarianceSemiRing(include_q=True)
        fragments = dict(ring.multiply_sql("l", "r"))
        assert "l.c" in fragments["c"] and "r.c" in fragments["c"]
        assert "2 * l.s * r.s" in fragments["q"]

    def test_lift_sql_shape(self):
        ring = VarianceSemiRing()
        assert [c for c, _ in ring.lift_sql("y")] == ["c", "s"]

    def test_scale_sql(self):
        ring = VarianceSemiRing()
        scaled = dict(ring.scale_sql("m", "k.cnt"))
        assert scaled["s"] == "(m.s * k.cnt)"

    def test_gradient_residual_update_sql(self):
        ring = GradientSemiRing()
        update = dict(ring.residual_update_sql("t", "0.5"))
        assert update["g"] == "(t.g + (0.5) * t.h)"
