"""Model serialization round-trips and the pivot rewrite (Appendix D.1)."""

import numpy as np
import pytest

import repro
from repro.core.pivot import (
    PivotedRelation,
    aggregate_over_naive_pivot,
    naive_pivot,
)
from repro.core.predict import feature_frame
from repro.core.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.engine.database import Database
from repro.exceptions import TrainingError
from repro.storage.column import Column


class TestSerialization:
    def test_tree_round_trip(self, small_star):
        db, graph = small_star
        model = repro.train_decision_tree(db, graph, {"num_leaves": 6})
        restored = model_from_dict(model_to_dict(model))
        frame = feature_frame(db, graph)
        assert np.allclose(
            model.predict_arrays(frame), restored.predict_arrays(frame)
        )
        assert restored.dump() == model.dump()

    def test_boosting_round_trip(self, small_star):
        db, graph = small_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4,
                        "learning_rate": 0.3},
        )
        restored = model_from_dict(model_to_dict(model))
        frame = feature_frame(db, graph)
        assert np.allclose(
            model.predict_arrays(frame), restored.predict_arrays(frame)
        )
        assert restored.loss.name == "l2"

    def test_boosting_with_parameterized_loss(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph, {"objective": "huber", "huber_delta": 2.5,
                        "num_iterations": 2, "num_leaves": 4},
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.loss.delta == 2.5

    def test_forest_round_trip(self, tiny_star):
        db, graph = tiny_star
        model = repro.train_random_forest(
            db, graph, {"num_iterations": 3, "num_leaves": 4,
                        "subsample": 0.8, "seed": 1},
        )
        restored = model_from_dict(model_to_dict(model))
        frame = feature_frame(db, graph)
        assert np.allclose(
            model.predict_arrays(frame), restored.predict_arrays(frame)
        )

    def test_multiclass_round_trip(self, tiny_star):
        db, graph = tiny_star
        table = db.table("fact")
        y = table.column("target").values
        labels = (y > np.median(y)).astype(np.int64)
        table.set_column(Column("target", labels))
        model = repro.train_gradient_boosting(
            db, graph, {"objective": "multiclass", "num_class": 2,
                        "num_iterations": 2, "num_leaves": 4},
        )
        restored = model_from_dict(model_to_dict(model))
        frame = feature_frame(db, graph)
        assert np.allclose(
            model.predict_proba(frame), restored.predict_proba(frame)
        )

    def test_save_load_file(self, tiny_star, tmp_path):
        db, graph = tiny_star
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 2, "num_leaves": 4},
        )
        path = str(tmp_path / "model.json")
        save_model(model, path)
        restored = load_model(path)
        frame = feature_frame(db, graph)
        assert np.allclose(
            model.predict_arrays(frame), restored.predict_arrays(frame)
        )

    def test_categorical_predicate_survives(self):
        from repro.datasets import star_schema
        from repro.joingraph.graph import JoinGraph

        rng = np.random.default_rng(0)
        db = Database()
        n = 300
        color = rng.integers(0, 4, n)
        y = np.where(np.isin(color, [0, 2]), 5.0, -5.0)
        db.create_table("fact", {"k": np.arange(n), "yv": y})
        db.create_table("dim", {"k": np.arange(n), "color": color})
        graph = JoinGraph(db)
        graph.add_relation("fact", y="yv")
        graph.add_relation("dim", features=["color"], categorical=["color"])
        graph.add_edge("fact", "dim", ["k"])
        model = repro.train_decision_tree(db, graph, {"num_leaves": 2})
        restored = model_from_dict(model_to_dict(model))
        pred = restored.root.left.predicate
        assert isinstance(pred.value, tuple)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TrainingError):
            model_from_dict({"kind": "perceptron"})


class TestPivotRewrite:
    @pytest.fixture
    def attribute_value_db(self):
        rng = np.random.default_rng(5)
        db = Database()
        n = 3000
        person = rng.integers(0, 800, n)
        types = np.array(["height", "birth", "location"], dtype=object)[
            rng.integers(0, 3, n)
        ]
        value = rng.integers(1, 100, n).astype(np.float64)
        db.create_table(
            "person_info",
            {"person": person, "info_type": types, "info_value": value},
        )
        return db

    def test_virtual_features_enumerated(self, attribute_value_db):
        pivoted = PivotedRelation(
            attribute_value_db, "person_info", "person", "info_type",
            "info_value",
        )
        assert pivoted.features() == ["pv_birth", "pv_height", "pv_location"]

    def test_rewrite_matches_naive_pivot(self, attribute_value_db):
        db = attribute_value_db
        pivoted = PivotedRelation(
            db, "person_info", "person", "info_type", "info_value"
        )
        wide = naive_pivot(db, "person_info", "person", "info_type",
                           "info_value")
        for feature in pivoted.features():
            fast = pivoted.absorb_feature(feature)
            slow = aggregate_over_naive_pivot(db, wide, feature)
            got = dict(zip(fast[feature], fast["c"]))
            expected = dict(zip(slow[feature], slow["c"]))
            # Naive pivot keeps one row per key (later rows of the same
            # (key, type) overwrite), so the rewrite covers a superset of
            # the naive counts; every naive group must exist in the
            # rewrite with at least its count.
            for value, count in expected.items():
                assert got.get(value, 0) >= count

    def test_rewrite_is_faster_at_scale(self, attribute_value_db):
        import time

        db = attribute_value_db
        pivoted = PivotedRelation(
            db, "person_info", "person", "info_type", "info_value"
        )
        start = time.perf_counter()
        wide = naive_pivot(db, "person_info", "person", "info_type",
                           "info_value")
        aggregate_over_naive_pivot(db, wide, "pv_height")
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        pivoted.absorb_feature("pv_height")
        rewrite_seconds = time.perf_counter() - start
        # The rewrite skips pivot materialization entirely (paper: 3.8x
        # faster node splits on Person_Info).
        assert rewrite_seconds < naive_seconds

    def test_non_pivot_feature_rejected(self, attribute_value_db):
        pivoted = PivotedRelation(
            attribute_value_db, "person_info", "person", "info_type",
            "info_value",
        )
        with pytest.raises(TrainingError):
            pivoted.absorb_feature("height")
