"""Catalog, WAL, and MVCC mechanism tests."""

import os

import numpy as np
import pytest

from repro.exceptions import CatalogError
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.mvcc import VersionStore
from repro.storage.table import ColumnTable, StorageConfig
from repro.storage.wal import KIND_UPDATE, WriteAheadLog


def table(name="t", n=5):
    return ColumnTable(name, [Column("v", np.arange(n, dtype=np.float64))])


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        catalog.create(table("t"))
        assert catalog.get("t").num_rows() == 5
        catalog.drop("t")
        assert not catalog.exists("t")

    def test_case_insensitive(self):
        catalog = Catalog()
        catalog.create(table("MyTable"))
        assert catalog.exists("mytable")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create(table("t"))
        with pytest.raises(CatalogError):
            catalog.create(table("t"))

    def test_replace(self):
        catalog = Catalog()
        catalog.create(table("t", 5))
        catalog.create(table("t", 9), replace=True)
        assert catalog.get("t").num_rows() == 9

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop("nope")
        catalog.drop("nope", if_exists=True)  # no raise

    def test_rename(self):
        catalog = Catalog()
        catalog.create(table("old"))
        catalog.rename("old", "new")
        assert catalog.exists("new") and not catalog.exists("old")

    def test_temp_namespace(self):
        catalog = Catalog()
        name = catalog.temp_name("msg")
        assert name.startswith("jb_tmp_")
        catalog.create(table(name))
        catalog.create(table("user_data"))
        assert catalog.drop_temp() == 1
        assert catalog.exists("user_data")

    def test_drop_temp_keeps_requested(self):
        catalog = Catalog()
        keep = catalog.temp_name("keep")
        drop = catalog.temp_name("drop")
        catalog.create(table(keep))
        catalog.create(table(drop))
        assert catalog.drop_temp(keep=[keep]) == 1
        assert catalog.exists(keep)


class TestWAL:
    def test_appends_accumulate(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.log_array(KIND_UPDATE, "t.v", np.arange(100, dtype=np.float64))
        assert wal.records_written == 1
        assert wal.bytes_written > 800
        assert os.path.getsize(wal.path) == wal.bytes_written
        wal.close()

    def test_truncate(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.log_marker(KIND_UPDATE, "x")
        wal.truncate()
        assert wal.records_written == 0
        assert os.path.getsize(wal.path) == 0
        wal.close()

    def test_table_writes_hit_wal(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        config = StorageConfig(wal=True)
        t = ColumnTable("t", [Column("v", np.arange(10, dtype=np.float64))],
                        config, wal=wal)
        before = wal.records_written
        t.set_column(Column("v", np.zeros(10)))
        assert wal.records_written == before + 1
        wal.close()


class TestMVCC:
    def test_versions_recorded(self):
        store = VersionStore()
        config = StorageConfig(mvcc=True)
        t = ColumnTable("t", [Column("v", np.arange(10, dtype=np.float64))],
                        config, mvcc=store)
        t.set_column(Column("v", np.ones(10)))
        chain = store.undo_chain("t", "v")
        assert len(chain) == 1
        assert np.allclose(chain[0], np.arange(10))
        assert store.validations == 1

    def test_chain_bounded(self):
        store = VersionStore(max_versions=2)
        config = StorageConfig(mvcc=True)
        t = ColumnTable("t", [Column("v", np.zeros(4))], config, mvcc=store)
        for i in range(5):
            t.set_column(Column("v", np.full(4, float(i))))
        assert len(store.undo_chain("t", "v")) == 2
