"""Tables: columnar, row-oriented, external, and the swap fast path."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.column import Column
from repro.storage.table import (
    ColumnTable,
    ExternalColumnStore,
    RowTable,
    StorageConfig,
    Table,
)


def make_columns(n=10):
    return [
        Column("k", np.arange(n)),
        Column("v", np.linspace(0, 1, n)),
    ]


class TestColumnTable:
    def test_read_back(self):
        table = ColumnTable("t", make_columns())
        assert table.column_names() == ["k", "v"]
        assert table.num_rows() == 10
        assert table.column("k").values[3] == 3

    def test_unknown_column(self):
        table = ColumnTable("t", make_columns())
        with pytest.raises(StorageError):
            table.column("nope")

    def test_set_column_replaces(self):
        table = ColumnTable("t", make_columns())
        table.set_column(Column("v", np.zeros(10)))
        assert table.column("v").values.sum() == 0

    def test_set_column_wrong_length(self):
        table = ColumnTable("t", make_columns())
        with pytest.raises(StorageError):
            table.set_column(Column("v", np.zeros(3)))

    def test_drop_column(self):
        table = ColumnTable("t", make_columns())
        table.drop_column("v")
        assert table.column_names() == ["k"]

    def test_compressed_round_trip(self):
        config = StorageConfig(compression="rle")
        table = ColumnTable("t", make_columns(), config)
        assert np.allclose(table.column("v").values, np.linspace(0, 1, 10))

    def test_compressed_stored_smaller_for_runs(self):
        config = StorageConfig(compression="rle")
        runs = [Column("v", np.repeat(np.arange(5), 2000))]
        table = ColumnTable("t", runs, config)
        assert table.stored_nbytes() < runs[0].nbytes() / 10


class TestColumnSwap:
    def test_swap_exchanges_pointers(self):
        config = StorageConfig(allow_column_swap=True)
        a = ColumnTable("a", make_columns(), config)
        b = ColumnTable("b", [Column("v", np.full(10, 7.0))], config)
        a.swap_column("v", b, "v")
        assert np.all(a.column("v").values == 7.0)

    def test_swap_requires_patch(self):
        config = StorageConfig(allow_column_swap=False)
        a = ColumnTable("a", make_columns(), config)
        b = ColumnTable("b", [Column("v", np.zeros(10))], config)
        with pytest.raises(StorageError):
            a.swap_column("v", b, "v")

    def test_swap_row_count_mismatch(self):
        config = StorageConfig(allow_column_swap=True)
        a = ColumnTable("a", make_columns(), config)
        b = ColumnTable("b", [Column("v", np.zeros(3))], config)
        with pytest.raises(StorageError):
            a.swap_column("v", b, "v")


class TestRowTable:
    def test_round_trip(self):
        table = RowTable("t", make_columns())
        assert table.num_rows() == 10
        assert np.allclose(table.column("v").values, np.linspace(0, 1, 10))

    def test_set_column_rebuilds(self):
        table = RowTable("t", make_columns())
        table.set_column(Column("v", np.zeros(10)))
        assert table.column("v").values.sum() == 0
        assert table.column("k").values[5] == 5

    def test_string_columns(self):
        table = RowTable("t", [Column("name", np.array(["ab", "cde"], dtype=object))])
        assert list(table.column("name").values) == ["ab", "cde"]


class TestExternalStore:
    def test_scan_copy_returns_fresh_array(self):
        table = ExternalColumnStore("t", make_columns())
        first = table.column("v").values
        second = table.column("v").values
        assert first is not second  # the interop copy

    def test_writes_are_pointer_stores(self):
        table = ExternalColumnStore("t", make_columns())
        table.set_column(Column("v", np.full(10, 2.0)))
        assert np.all(table.column("v").values == 2.0)


class TestFactory:
    def test_layout_dispatch(self):
        assert isinstance(
            Table.from_columns("t", make_columns(), StorageConfig(layout="row")),
            RowTable,
        )
        assert isinstance(
            Table.from_columns("t", make_columns(), StorageConfig(layout="external")),
            ExternalColumnStore,
        )
        assert isinstance(
            Table.from_columns("t", make_columns(), StorageConfig()),
            ColumnTable,
        )

    def test_presets_exist(self):
        for name in ("x-col", "x-row", "d-disk", "d-mem", "dp", "d-swap", "plain"):
            StorageConfig.preset(name)

    def test_unknown_preset(self):
        with pytest.raises(StorageError):
            StorageConfig.preset("oracle")
