"""Parser tests, including the round-trip property parse(sql(ast)) == ast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse, parse_expression


def one(sql):
    statements = parse(sql)
    assert len(statements) == 1
    return statements[0]


class TestSelect:
    def test_simple(self):
        stmt = one("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert [i.output_name(k) for k, i in enumerate(stmt.items)] == ["a", "b"]
        assert stmt.source.name == "t"

    def test_aliases(self):
        stmt = one("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_star_variants(self):
        stmt = one("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_joins(self):
        stmt = one(
            "SELECT a FROM t JOIN u ON t.k = u.k LEFT JOIN v ON u.j = v.j"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_using(self):
        stmt = one("SELECT a FROM t JOIN u USING (k1, k2)")
        assert stmt.joins[0].using == ["k1", "k2"]

    def test_group_having_order_limit(self):
        stmt = one(
            "SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING SUM(b) > 0 "
            "ORDER BY s DESC LIMIT 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert stmt.limit == 5

    def test_subquery_source(self):
        stmt = one("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert stmt.source.subquery is not None
        assert stmt.source.alias == "sub"

    def test_distinct(self):
        assert one("SELECT DISTINCT a FROM t").distinct

    def test_window_function(self):
        stmt = one("SELECT SUM(c) OVER (PARTITION BY g ORDER BY a) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.WindowCall)
        assert len(call.window.partition_by) == 1
        assert len(call.window.order_by) == 1


class TestOtherStatements:
    def test_create_table_as(self):
        stmt = one("CREATE TABLE x AS SELECT 1 AS a")
        assert isinstance(stmt, ast.CreateTableAs)
        assert stmt.name == "x" and not stmt.replace

    def test_create_or_replace(self):
        assert one("CREATE OR REPLACE TABLE x AS SELECT 1 AS a").replace

    def test_drop(self):
        stmt = one("DROP TABLE IF EXISTS x")
        assert isinstance(stmt, ast.DropTable) and stmt.if_exists

    def test_update(self):
        stmt = one("UPDATE t SET a = a + 1, b = 2 WHERE a > 0")
        assert isinstance(stmt, ast.Update)
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_multiple_statements(self):
        assert len(parse("SELECT 1 AS a; SELECT 2 AS b")) == 2


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_chain_with_and(self):
        expr = parse_expression("a > 1 AND b <= 2 OR c = 3")
        assert expr.op == "OR"

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList) and len(expr.items) == 3

    def test_not_in_subquery(self):
        expr = parse_expression("a NOT IN (SELECT k FROM t)")
        assert isinstance(expr, ast.InSubquery) and expr.negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case(self):
        expr = parse_expression("CASE WHEN a > 0 THEN 1 ELSE -1 END")
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default is not None

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert isinstance(expr, ast.Cast) and expr.target == "INT"

    def test_qualified_column(self):
        expr = parse_expression("t.a")
        assert expr.table == "t" and expr.name == "a"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.star

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct


class TestUnionAll:
    def test_parse_union_all(self):
        stmt = one("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.selects) == 2
        assert all(isinstance(s, ast.Select) for s in stmt.selects)

    def test_chained_branches_keep_clauses(self):
        stmt = one(
            "SELECT a, SUM(b) AS s FROM t WHERE a > 1 GROUP BY a "
            "UNION ALL SELECT a, SUM(b) AS s FROM u GROUP BY a "
            "UNION ALL SELECT a, SUM(b) AS s FROM v GROUP BY a"
        )
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.selects) == 3
        assert stmt.selects[0].where is not None
        assert stmt.selects[2].group_by

    def test_round_trip(self):
        text = "SELECT a FROM t UNION ALL SELECT a FROM u"
        assert one(text).sql() == text

    def test_create_table_as_union(self):
        stmt = one("CREATE TABLE x AS SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(stmt, ast.CreateTableAs)
        assert isinstance(stmt.query, ast.UnionAll)

    def test_union_in_from_subquery(self):
        stmt = one(
            "SELECT COUNT(*) AS n FROM "
            "(SELECT a FROM t UNION ALL SELECT a FROM u) AS both_tables"
        )
        assert isinstance(stmt.source.subquery, ast.UnionAll)

    def test_bare_union_rejected(self):
        with pytest.raises(ParseError, match="UNION ALL"):
            parse("SELECT a FROM t UNION SELECT a FROM u")


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse("")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse("FOO BAR")

    def test_missing_from_item(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM t")

    def test_trailing_tokens_in_expression(self):
        with pytest.raises(ParseError):
            parse_expression("a b c")

    def test_case_without_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")


# ---------------------------------------------------------------------------
# Round-trip property: pretty-print then re-parse gives the same tree.
# ---------------------------------------------------------------------------
_literals = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="abc xyz", max_size=8),
    st.none(),
)
_names = st.sampled_from(["a", "b", "c", "col1", "value"])


def _expr_strategy():
    base = st.one_of(
        _literals.map(ast.Literal),
        _names.map(lambda n: ast.ColumnRef(n)),
        st.tuples(_names, st.sampled_from(["t", "u"])).map(
            lambda p: ast.ColumnRef(p[0], p[1])
        ),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "/"]), children, children).map(
                lambda t: ast.BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(["=", "<", ">", "<=", ">=", "!="]),
                      children, children).map(
                lambda t: ast.BinaryOp(t[0], t[1], t[2])
            ),
            children.map(lambda e: ast.UnaryOp("-", e)),
            st.tuples(children, children, children).map(
                lambda t: ast.CaseExpr(whens=[(ast.BinaryOp(">", t[0], t[1]), t[2])])
            ),
        ),
        max_leaves=8,
    )


@given(_expr_strategy())
@settings(max_examples=120, deadline=None)
def test_expression_round_trip(expr):
    """Printing is a fixpoint after one parse.

    A strict AST identity does not hold (e.g. ``-1`` prints from
    ``Literal(-1)`` but parses as unary minus over ``Literal(1)``), but the
    printed form must stabilize: parse(print(x)) prints identically
    thereafter — which is what guarantees generated SQL is unambiguous.
    """
    text = expr.sql()
    reparsed = parse_expression(text)
    stable = reparsed.sql()
    assert parse_expression(stable).sql() == stable
