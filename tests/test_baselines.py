"""Baseline models, the export pipeline, and the Figure 16 variants."""

import numpy as np
import pytest

import repro
from repro.baselines import (
    ExactGradientBoosting,
    HistGradientBoosting,
    HistRandomForest,
    materialize_and_export,
    train_madlib_tree,
    train_tree_variant,
)
from repro.baselines.export import estimate_join_bytes, load_feature_matrix
from repro.exceptions import MemoryBudgetExceeded, TrainingError


@pytest.fixture
def xy(small_star):
    db, graph = small_star
    X, y, names = load_feature_matrix(db, graph)
    return X, y


class TestHistGBM:
    def test_fits_noise_free_signal(self, xy):
        X, y = xy
        model = HistGradientBoosting(
            num_iterations=30, num_leaves=8, learning_rate=0.3, max_bin=64
        ).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.5 * y.std()

    def test_history_per_iteration(self, xy):
        X, y = xy
        model = HistGradientBoosting(num_iterations=5, num_leaves=4).fit(
            X, y, eval_rmse=True
        )
        assert len(model.history) == 5
        rmses = [h[2] for h in model.history]
        assert rmses[-1] < rmses[0]

    def test_update_cost_much_smaller_than_train(self, xy):
        """The red-line property of Figure 5: residual updates on a raw
        array are far cheaper than tree construction."""
        X, y = xy
        model = HistGradientBoosting(num_iterations=10, num_leaves=8).fit(X, y)
        train = sum(h[0] for h in model.history)
        update = sum(h[1] for h in model.history)
        assert update < train

    def test_unfitted_predict_raises(self):
        with pytest.raises(TrainingError):
            HistGradientBoosting().predict(np.zeros((2, 2)))

    def test_min_child_samples(self, xy):
        X, y = xy
        model = HistGradientBoosting(
            num_iterations=1, num_leaves=64, min_child_samples=len(y) // 2
        ).fit(X, y)
        # With huge min-child the tree can split at most once.
        assert len(model.trees) == 1


class TestExactModels:
    def test_exact_gbm_converges(self, xy):
        X, y = xy
        model = ExactGradientBoosting(
            num_iterations=10, num_leaves=6, learning_rate=0.3
        ).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.6 * y.std()

    def test_rf_baseline(self, xy):
        X, y = xy
        model = HistRandomForest(
            num_iterations=10, num_leaves=8, subsample=0.5, seed=0
        ).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < y.std()


class TestExportPipeline:
    def test_export_produces_training_data(self, small_star):
        db, graph = small_star
        exported = materialize_and_export(db, graph)
        assert exported.features.shape[0] == db.table("fact").num_rows()
        assert exported.total_seconds > 0
        assert exported.csv_bytes > 0

    def test_memory_budget_enforced(self, small_star):
        db, graph = small_star
        with pytest.raises(MemoryBudgetExceeded):
            materialize_and_export(db, graph, memory_budget=100)

    def test_estimate_scales_with_features(self, small_star):
        db, graph = small_star
        estimate = estimate_join_bytes(db, graph)
        expected = db.table("fact").num_rows() * (len(graph.all_features()) + 1) * 8
        assert estimate == expected

    def test_exported_matches_in_memory_matrix(self, tiny_star):
        db, graph = tiny_star
        exported = materialize_and_export(db, graph)
        X, y, _ = load_feature_matrix(db, graph)
        assert np.allclose(np.sort(exported.y), np.sort(y))


def structure_signature(model):
    """Tree shape ignoring relation names (the naive/madlib variants train
    over the wide table, so relations differ but splits must not)."""
    out = []

    def walk(node, depth):
        if node.is_leaf:
            out.append((depth, None, None, round(node.prediction, 9)))
            return
        pred = node.left.predicate
        out.append((depth, pred.column, pred.op, pred.value))
        walk(node.left, depth + 1)
        walk(node.right, depth + 1)

    walk(model.root, 0)
    return out


class TestFigure16Variants:
    def test_all_variants_same_tree(self, small_star):
        db, graph = small_star
        structures = []
        for variant in ("naive", "batch", "joinboost"):
            model, _ = train_tree_variant(
                db, graph, variant, {"num_leaves": 6, "min_data_in_leaf": 2}
            )
            structures.append(structure_signature(model))
        assert structures[0] == structures[1] == structures[2]

    def test_unknown_variant(self, small_star):
        db, graph = small_star
        with pytest.raises(TrainingError):
            train_tree_variant(db, graph, "turbo")

    def test_madlib_trains_same_model(self, tiny_star):
        db, graph = tiny_star
        jb, _ = train_tree_variant(db, graph, "joinboost", {"num_leaves": 4})
        madlib, seconds = train_madlib_tree(db, graph, {"num_leaves": 4})
        assert structure_signature(madlib) == structure_signature(jb)
        assert seconds > 0

    def test_variants_clean_up(self, tiny_star):
        db, graph = tiny_star
        for variant in ("naive", "batch", "joinboost"):
            train_tree_variant(db, graph, variant, {"num_leaves": 4})
        train_madlib_tree(db, graph, {"num_leaves": 4})
        assert db.catalog.temp_names() == []
