"""Process-executor and sharded training parity (ISSUE 9).

The acceptance bar: ``model_digest`` is bit-identical across executors
{serial, thread, process} and, on exact-arithmetic configurations,
across shard counts {1, 4} — with and without ``worker_crash``/``stall``
faults — and chaos runs show ``tasks_redispatched > 0`` with zero
exhausted retries.  Recovery must be *observable*, not incidental.
"""

import numpy as np
import pytest

import repro
from repro.core.serialize import model_digest
from repro.distributed import ClusterConfig, SimulatedCluster
from repro.engine.database import Database
from repro.exceptions import TrainingError
from repro.joingraph.graph import JoinGraph

from conftest import backend_matrix


# --------------------------------------------------------------------------
# Single-node training across executors
# --------------------------------------------------------------------------
def _build_trainset(conn, n=500, seed=7):
    rng = np.random.default_rng(seed)
    conn.create_table("sales", {
        "date_id": rng.integers(0, 30, n),
        "item_id": rng.integers(0, 20, n),
        "net_profit": rng.normal(size=n),
    })
    conn.create_table("date", {
        "date_id": np.arange(30),
        "holiday": rng.integers(0, 2, 30).astype(np.float64),
    })
    conn.create_table("item", {
        "item_id": np.arange(20),
        "price": rng.normal(size=20),
    })
    train_set = repro.join_graph(conn)
    train_set.add_node("sales", y="net_profit")
    train_set.add_node("date", X=["holiday"])
    train_set.add_node("item", X=["price"])
    train_set.add_edge("sales", "date", ["date_id"])
    train_set.add_edge("sales", "item", ["item_id"])
    return train_set


PARAMS = {
    "objective": "regression",
    "num_iterations": 2,
    "num_leaves": 4,
    "learning_rate": 0.3,
}


def _train(backend, chaos=None, **extra):
    conn = repro.connect(backend=backend, chaos=chaos)
    train_set = _build_trainset(conn)
    model = repro.train(dict(PARAMS, **extra), train_set)
    return model


class TestExecutorParity:
    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    def test_process_digest_matches_serial_and_thread(self, backend):
        serial = _train(backend, num_workers=1)
        thread = _train(backend, num_workers=4, executor="thread")
        process = _train(backend, num_workers=4, executor="process")
        assert model_digest(thread) == model_digest(serial)
        assert model_digest(process) == model_digest(serial)

    def test_process_executor_engages_on_sqlite(self):
        model = _train("sqlite", num_workers=4, executor="process")
        census = model.frontier_census
        assert census["executor"] == "process"
        assert census["executor_fallback_reason"] is None
        assert census["worker_crashes"] == 0
        assert census["tasks_redispatched"] == 0

    def test_raw_database_falls_back_to_threads(self):
        """A bare embedded Database has no serialized-task contract; the
        evaluator must say so rather than silently doing nothing."""
        db, graph = _int_y_star(rows=256)
        model = repro.train_gradient_boosting(
            db, graph, dict(PARAMS, num_workers=4, executor="process")
        )
        census = model.frontier_census
        assert census["executor"] == "thread"
        assert "process-safe" in census["executor_fallback_reason"]

    def test_executor_param_validated(self):
        from repro.core.params import TrainParams

        with pytest.raises(TrainingError, match="executor"):
            TrainParams.from_dict(dict(PARAMS, executor="carrier-pigeon"))

    def test_executor_env_applies_when_param_absent(self, monkeypatch):
        from repro.core.params import TrainParams

        monkeypatch.setenv("JOINBOOST_EXECUTOR", "process")
        assert TrainParams.from_dict(dict(PARAMS)).executor == "process"
        # an explicit parameter always wins
        assert TrainParams.from_dict(
            dict(PARAMS, executor="thread")
        ).executor == "thread"


class TestExecutorChaosParity:
    """Killed and stalled workers leave no trace in the digest."""

    @pytest.mark.parametrize("backend", backend_matrix("plain", "sqlite"))
    def test_worker_crash_recovers_bit_identical(self, backend):
        reference = _train(backend, num_workers=1)
        model = _train(
            backend,
            chaos="tag=feature:nth=2:times=1:kind=worker_crash",
            num_workers=4,
            executor="process",
        )
        assert model_digest(model) == model_digest(reference)
        census = model.frontier_census
        assert census["worker_crashes"] >= 1
        assert census["tasks_redispatched"] >= 1
        assert census["respawns"] >= 1
        assert census["retry_exhausted"] == 0
        assert census["chaos_injected"] >= 1

    def test_stall_recovers_bit_identical(self, monkeypatch):
        monkeypatch.setenv("JOINBOOST_TASK_DEADLINE", "2")
        reference = _train("sqlite", num_workers=1)
        model = _train(
            "sqlite",
            chaos="tag=feature:nth=3:times=1:kind=stall",
            num_workers=4,
            executor="process",
        )
        assert model_digest(model) == model_digest(reference)
        census = model.frontier_census
        assert census["deadline_timeouts"] >= 1
        assert census["tasks_redispatched"] >= 1
        assert census["retry_exhausted"] == 0

    def test_task_faults_inert_on_thread_executor(self):
        """Task-scoped kinds target process workers; a thread run must
        neither fire them nor burn their counters on statements."""
        reference = _train("sqlite", num_workers=1)
        model = _train(
            "sqlite",
            chaos="tag=feature:nth=2:times=1:kind=worker_crash",
            num_workers=4,
            executor="thread",
        )
        assert model_digest(model) == model_digest(reference)
        assert model.frontier_census["chaos_injected"] == 0


# --------------------------------------------------------------------------
# Sharded training (the cluster) across executors and shard counts
# --------------------------------------------------------------------------
def _int_y_star(rows=2048, seed=11):
    """A star schema whose target is integer-valued: per-shard partial
    sums are exact in float64, so merged aggregates — and therefore the
    trained model — are identical for ANY shard count."""
    rng = np.random.default_rng(seed)
    db = Database(name="inty")
    db.create_table("fact", {
        "k0": rng.integers(0, 40, size=rows),
        "k1": rng.integers(0, 30, size=rows),
        "y": rng.integers(-8, 9, size=rows).astype(np.float64),
    })
    db.create_table("dim0", {
        "k0": np.arange(40),
        "f0": rng.normal(size=40),
        "f1": rng.integers(0, 5, size=40).astype(np.float64),
    })
    db.create_table("dim1", {
        "k1": np.arange(30),
        "f2": rng.normal(size=30),
        "f3": rng.integers(0, 7, size=30).astype(np.float64),
    })
    graph = JoinGraph(db)
    graph.add_relation("fact", features=[], y="y", is_fact=True)
    graph.add_relation("dim0", features=["f0", "f1"])
    graph.add_relation("dim1", features=["f2", "f3"])
    graph.add_edge("fact", "dim0", ["k0"], ["k0"])
    graph.add_edge("fact", "dim1", ["k1"], ["k1"])
    return db, graph


TREE_PARAMS = {"num_leaves": 8, "min_data_in_leaf": 2}


def _sharded_tree(machines, executor="serial", chaos=None, deadline=None):
    db, graph = _int_y_star()
    cluster = SimulatedCluster(
        db, graph, "k0", ClusterConfig(num_machines=machines),
        executor=executor, chaos=chaos, task_deadline=deadline,
    )
    tree, _ = cluster.train_decision_tree(TREE_PARAMS)
    return tree, cluster


class TestShardedParity:
    def test_tree_identical_across_shard_counts_and_executors(self):
        reference, _ = _sharded_tree(machines=1)
        for machines, executor in [(4, "serial"), (4, "thread"),
                                   (4, "process"), (1, "process")]:
            tree, cluster = _sharded_tree(machines, executor=executor)
            assert tree.dump() == reference.dump(), (machines, executor)
            assert cluster.census()["tasks_redispatched"] == 0

    def test_one_round_boosting_identical_across_shards(self):
        digests = {}
        for machines in (1, 4):
            db, graph = _int_y_star()
            cluster = SimulatedCluster(
                db, graph, "k0", ClusterConfig(num_machines=machines)
            )
            model, _ = cluster.train_gradient_boosting(
                {"num_iterations": 1, "num_leaves": 8, "min_data_in_leaf": 2}
            )
            digests[machines] = model_digest(model)
        assert digests[1] == digests[4]

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_worker_crash_on_shard_recovers(self, executor):
        reference, _ = _sharded_tree(machines=4)
        tree, cluster = _sharded_tree(
            machines=4, executor=executor,
            chaos="tag=feature:nth=3:times=1:kind=worker_crash",
        )
        assert tree.dump() == reference.dump()
        census = cluster.census()
        assert census["worker_crashes"] == 1
        assert census["tasks_redispatched"] == 1
        assert census["chaos_injected"] == 1

    def test_stalled_shard_hits_deadline_and_recovers(self):
        reference, _ = _sharded_tree(machines=4)
        tree, cluster = _sharded_tree(
            machines=4, executor="process",
            chaos="tag=totals:nth=2:times=1:kind=stall", deadline=2,
        )
        assert tree.dump() == reference.dump()
        census = cluster.census()
        assert census["deadline_timeouts"] == 1
        assert census["tasks_redispatched"] == 1
        assert census["respawns"] == 1

    def test_gbm_digest_identical_across_executors_at_fixed_shards(self):
        digests = {}
        for executor in ("serial", "process"):
            db, graph = _int_y_star()
            cluster = SimulatedCluster(
                db, graph, "k0", ClusterConfig(num_machines=4),
                executor=executor,
            )
            model, _ = cluster.train_gradient_boosting(
                {"num_iterations": 2, "num_leaves": 4, "learning_rate": 0.5}
            )
            digests[executor] = model_digest(model)
        assert digests["serial"] == digests["process"]


class TestShardedAccounting:
    def test_measured_wall_reported_alongside_simulated(self):
        _, cluster = _sharded_tree(machines=4, executor="process")
        census = cluster.census()
        assert census["measured_wall_seconds"] > 0
        assert census["simulated_seconds"] > 0
        assert census["num_shards"] == 4
        assert census["executor"] == "process"
        assert cluster.measured_wall_seconds == pytest.approx(
            census["measured_wall_seconds"]
        )

    def test_model_carries_cluster_census(self):
        db, graph = _int_y_star()
        cluster = SimulatedCluster(
            db, graph, "k0", ClusterConfig(num_machines=2)
        )
        model, _ = cluster.train_gradient_boosting(
            {"num_iterations": 1, "num_leaves": 4}
        )
        assert model.frontier_census["num_shards"] == 2
        assert model.frontier_census["executor"] == "serial"

    def test_unknown_executor_rejected(self):
        db, graph = _int_y_star(rows=128)
        with pytest.raises(TrainingError, match="executor"):
            SimulatedCluster(
                db, graph, "k0", ClusterConfig(num_machines=2),
                executor="fax-machine",
            )
