"""Lexer tests."""

import pytest

from repro.exceptions import TokenizeError
from repro.sql.tokenizer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_normalized(self):
        tokens = kinds("select From WHERE")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("MyTable")[0] == (TokenType.IDENT, "MyTable")

    def test_numbers(self):
        values = [v for t, v in kinds("1 2.5 1e3 1.5E-2 .5")]
        assert values == ["1", "2.5", "1e3", "1.5E-2", ".5"]

    def test_string_literal_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "weird name"

    def test_operators_longest_match(self):
        values = [v for _, v in kinds("a <= b <> c != d")]
        assert "<=" in values and "<>" in values and "!=" in values

    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert len(kinds("a /* hi */ b")) == 2

    def test_eof_token(self):
        assert tokenize("a")[-1].type is TokenType.EOF


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unterminated_block_comment(self):
        with pytest.raises(TokenizeError):
            tokenize("/* oops")

    def test_bad_character(self):
        with pytest.raises(TokenizeError):
            tokenize("a ? b")
