"""Engine edge cases and failure injection."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.exceptions import (
    CatalogError,
    ExecutionError,
    ParseError,
    PlanError,
)


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", {"k": [1, 2, 3], "v": [1.0, 2.0, 3.0]})
    return database


class TestEmptyInputs:
    def test_empty_table_queries(self, db):
        db.create_table("empty", {"k": np.zeros(0, dtype=np.int64),
                                  "v": np.zeros(0)})
        assert db.execute("SELECT * FROM empty").num_rows == 0
        assert db.execute("SELECT COUNT(*) AS n FROM empty").scalar() == 0
        assert db.execute(
            "SELECT k, SUM(v) AS s FROM empty GROUP BY k"
        ).num_rows == 0

    def test_join_with_empty_side(self, db):
        db.create_table("empty", {"k": np.zeros(0, dtype=np.int64)})
        assert db.execute(
            "SELECT t.k FROM t JOIN empty ON t.k = empty.k"
        ).num_rows == 0
        left = db.execute(
            "SELECT t.k FROM t LEFT JOIN empty ON t.k = empty.k"
        )
        assert left.num_rows == 3

    def test_window_over_empty(self, db):
        db.create_table("empty", {"k": np.zeros(0, dtype=np.int64)})
        result = db.execute(
            "SELECT SUM(k) OVER (ORDER BY k) AS rs FROM empty"
        )
        assert result.num_rows == 0

    def test_update_empty_table(self, db):
        db.create_table("empty", {"v": np.zeros(0)})
        db.execute("UPDATE empty SET v = v + 1")
        assert db.table("empty").num_rows() == 0

    def test_limit_zero(self, db):
        assert db.execute("SELECT * FROM t LIMIT 0").num_rows == 0

    def test_limit_beyond_rows(self, db):
        assert db.execute("SELECT * FROM t LIMIT 99").num_rows == 3


class TestErrorPaths:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT ghost FROM t")

    def test_bad_sql(self, db):
        with pytest.raises(ParseError):
            db.execute("SELEC k FROM t")

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT frobnicate(k) AS x FROM t")

    def test_scalar_needs_one_cell(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM t").scalar()

    def test_nonaggregate_column_outside_group_by(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT v, COUNT(*) AS n FROM t GROUP BY k")

    def test_in_subquery_needs_one_column(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT k FROM t WHERE k IN (SELECT k, v FROM t)")

    def test_unsupported_window_function(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT MEDIAN(v) OVER (ORDER BY k) AS m FROM t")


class TestTypeHandling:
    def test_string_in_numeric_context(self, db):
        db.create_table("s", {"name": np.array(["a", "b"], dtype=object)})
        with pytest.raises(ExecutionError):
            db.execute("SELECT name + 1 AS x FROM s")

    def test_division_by_zero_is_inf_or_nan(self, db):
        result = db.execute("SELECT v / (k - 1) AS x FROM t")
        values = result["x"]
        assert np.isinf(values[0]) or np.isnan(values[0])

    def test_cast_string_to_float(self, db):
        db.create_table("s", {"txt": np.array(["1.5", "2.5"], dtype=object)})
        result = db.execute("SELECT CAST(txt AS FLOAT) + 1 AS x FROM s")
        assert list(result["x"]) == [2.5, 3.5]

    def test_concat_operator(self, db):
        db.create_table("s", {"a": np.array(["x"], dtype=object),
                              "b": np.array(["y"], dtype=object)})
        assert db.execute("SELECT a || b AS ab FROM s")["ab"][0] == "xy"

    def test_scalar_functions(self, db):
        row = db.execute(
            "SELECT ABS(-2) AS a, SIGN(-3) AS s, SQRT(4.0) AS q, "
            "LOG(1.0) AS l, EXP(0.0) AS e, FLOOR(1.7) AS f, CEIL(1.2) AS c, "
            "POWER(2, 3) AS p, LEAST(1, 2) AS lo, GREATEST(1, 2) AS hi, "
            "COALESCE(NULL, 5) AS co FROM t LIMIT 1"
        ).first_row()
        assert (row["a"], row["s"], row["q"]) == (2, -1, 2.0)
        assert (row["l"], row["e"]) == (0.0, 1.0)
        assert (row["f"], row["c"], row["p"]) == (1.0, 2.0, 8.0)
        assert (row["lo"], row["hi"], row["co"]) == (1.0, 2.0, 5.0)


class TestPlanCache:
    def test_repeated_statements_reuse_parse(self, db):
        db.execute("SELECT COUNT(*) AS n FROM t")
        cached = len(db._parse_cache)
        db.execute("SELECT COUNT(*) AS n FROM t")
        assert len(db._parse_cache) == cached

    def test_cache_results_still_correct_after_table_change(self, db):
        first = db.execute("SELECT SUM(v) AS s FROM t").scalar()
        db.execute("UPDATE t SET v = v + 1")
        second = db.execute("SELECT SUM(v) AS s FROM t").scalar()
        assert second == first + 3


class TestFullOuterJoin:
    def test_full_join_covers_both_sides(self, db):
        db.create_table("u", {"k": [2, 9], "w": [20.0, 90.0]})
        result = db.execute(
            "SELECT t.k AS tk, u.k AS uk FROM t FULL OUTER JOIN u ON t.k = u.k"
        )
        assert result.num_rows == 4  # 1,2,3 plus unmatched 9
        tk = result.column("tk")
        uk = result.column("uk")
        assert tk.is_null().sum() == 1
        assert uk.is_null().sum() == 2

    def test_right_join(self, db):
        db.create_table("u", {"k": [2, 9], "w": [20.0, 90.0]})
        result = db.execute(
            "SELECT w FROM t RIGHT JOIN u ON t.k = u.k"
        )
        assert sorted(result["w"]) == [20.0, 90.0]
