"""PredictionService: versioning, warm-cache census, worker parity.

The service compiles deployed models once per version digest and keeps
the kernels in a warm LRU (:class:`repro.serve.CompiledModelCache`).
These tests pin the cache census (hits/misses/stores/evictions), the
bounded version-history retention on redeploy (PR 10: the previous
kernel stays pinned warm so rollback never recompiles), the registry
lock under deploy-vs-score races, the serving error taxonomy on the
backend paths, and that fanning batch scoring out over
``JOINBOOST_NUM_WORKERS=4`` workers returns bytes identical to serial —
the kernels are pure numpy, so concurrency must never show up in the
output.
"""

import threading

import numpy as np
import pytest

import repro
from repro.core.predict import feature_frame
from repro.core.serialize import model_digest
from repro.datasets.synthetic import star_schema
from repro.exceptions import (
    ServingBackendError,
    TrainingError,
    TransientServingError,
)
from repro.serve import CompiledModelCache, PredictionService


@pytest.fixture
def served(tiny_star):
    db, graph = tiny_star
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 5}
    )
    service = PredictionService(db, graph)
    return db, graph, model, service


class TestDeployment:
    def test_deploy_returns_content_digest(self, served):
        _, _, model, service = served
        digest = service.deploy(model)
        assert digest == model_digest(model)
        assert service.version() == digest

    def test_scoring_undeployed_name_raises(self, served):
        _, _, model, service = served
        service.deploy(model, name="prod")
        with pytest.raises(TrainingError, match="staging"):
            service.score_all(name="staging")

    def test_undeploy_forgets_and_evicts(self, served):
        _, _, model, service = served
        service.deploy(model)
        service.score_all()
        service.undeploy()
        assert service.deployments() == []
        assert service.stats()["entries"] == 0

    def test_redeploy_retains_previous_version_warm(self, served):
        db, graph, model, service = served
        first = service.deploy(model)
        service.score_all()  # warms the cache with the first kernel
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4, "seed": 6}
        )
        second = service.deploy(retrained)
        assert second != first
        stats = service.stats()
        # PR 10: the previous version is retained, not evicted — its
        # kernel stays pinned warm for canary comparison and rollback.
        assert stats["invalidations"] == 0
        assert stats["deployments"]["default"] == second
        assert stats["history"]["default"] == [first]
        # The new version serves its own bits (fresh compile).
        scores = service.score_all()
        frame = feature_frame(db, graph, include_target=False)
        assert np.array_equal(scores, retrained.predict_arrays(frame))
        # Rollback restores the retained version without a recompile.
        stores = service.stats()["stores"]
        assert service.rollback() == first
        rolled = service.score_all()
        assert np.array_equal(rolled, model.predict_arrays(frame))
        assert service.stats()["stores"] == stores

    def test_history_is_bounded(self, served):
        db, graph, model, service = served
        first = service.deploy(model)
        service.score_all()
        digests = [first]
        for iterations in (4, 5):
            retrained = repro.train_gradient_boosting(
                db,
                graph,
                {"num_iterations": iterations, "num_leaves": 4, "seed": 6},
            )
            digests.append(service.deploy(retrained))
            service.score_all()
        assert len(set(digests)) == 3
        # retained_versions=2 keeps live + one previous: the oldest
        # version fell off the history and its kernel was invalidated.
        stats = service.stats()
        assert stats["history"]["default"] == [digests[1]]
        assert stats["invalidations"] == 1
        assert not service.cache.pinned(first)


class TestCacheCensus:
    def test_hit_miss_store_counts(self, served):
        _, _, model, service = served
        service.deploy(model)
        service.score_all()  # miss -> compile -> store
        service.score_all()  # hit
        service.score_all()  # hit
        stats = service.stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 2
        assert stats["entries"] == 1

    def test_lru_evicts_oldest(self):
        cache = CompiledModelCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate_unknown_digest_is_noop(self):
        cache = CompiledModelCache()
        assert cache.invalidate("nope") is False
        assert cache.stats()["invalidations"] == 0


class TestWorkerParity:
    def test_parallel_score_all_identical_to_serial(self, served, monkeypatch):
        db, graph, model, service = served
        service.deploy(model)
        serial = service.score_all(workers=1)
        frame = feature_frame(db, graph, include_target=False)
        assert np.array_equal(serial, model.predict_arrays(frame))

        monkeypatch.setenv("JOINBOOST_NUM_WORKERS", "4")
        parallel = service.score_all(batch_rows=64)  # env-resolved workers
        assert np.array_equal(parallel, serial)

    def test_score_batches_preserves_order(self, served):
        db, graph, model, service = served
        service.deploy(model)
        frame = feature_frame(db, graph, include_target=False)
        rng = np.random.default_rng(8)
        n = len(next(iter(frame.values())))
        frames = []
        for _ in range(6):
            idx = rng.integers(0, n, 17)
            frames.append({k: v[idx] for k, v in frame.items()})
        serial = service.score_batches(frames, workers=1)
        fanned = service.score_batches(frames, workers=4)
        for a, b in zip(serial, fanned):
            assert np.array_equal(a, b)

    def test_sql_path_matches_compiled(self, served):
        _, _, model, service = served
        service.deploy(model)
        assert np.array_equal(service.score_sql(), service.score_all())


class TestRegistryLocking:
    def test_deploy_under_concurrent_scoring(self, served):
        """Redeploying while other threads score must never surface a
        half-applied registry: every scored result equals one of the two
        models' healthy outputs, bit for bit."""
        db, graph, model, service = served
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4, "seed": 6}
        )
        frame = feature_frame(db, graph, include_target=False)
        valid = (model.predict_arrays(frame), retrained.predict_arrays(frame))
        service.deploy(model)
        stop = threading.Event()
        errors = []

        def scorer():
            while not stop.is_set():
                try:
                    scores = service.score_all()
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)
                    return
                if not any(np.array_equal(scores, v) for v in valid):
                    errors.append(AssertionError("torn scores observed"))
                    return

        threads = [threading.Thread(target=scorer) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(10):
                service.deploy(retrained)
                service.deploy(model)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors, errors[0]


class TestServingTaxonomy:
    def _chaos_service(self, spec):
        conn = repro.connect("plain", chaos=spec, retry=False)
        db, graph = star_schema(
            db=conn, num_fact_rows=300, num_dims=2, dim_size=10, seed=4
        )
        model = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 5}
        )
        service = PredictionService(conn, graph)
        service.deploy(model)
        return service

    def test_transient_backend_fault_wraps_as_transient(self):
        service = self._chaos_service(
            "tag=serve_sql:nth=1:times=1:kind=transient"
        )
        with pytest.raises(TransientServingError) as excinfo:
            service.score_sql()
        assert excinfo.value.transient is True
        assert excinfo.value.__cause__ is not None
        assert service.stats()["serving_faults"] == {
            "transient": 1,
            "permanent": 0,
        }
        # The plan is spent: the same call now succeeds.
        assert len(service.score_sql()) == 300

    def test_permanent_backend_fault_wraps_as_permanent(self):
        service = self._chaos_service(
            "tag=serve_key:nth=1:times=1:kind=permanent"
        )
        with pytest.raises(ServingBackendError) as excinfo:
            service.score_key({"k0": 3})
        assert excinfo.value.transient is False
        assert service.stats()["serving_faults"] == {
            "transient": 0,
            "permanent": 1,
        }

    def test_config_errors_are_not_backend_faults(self, served):
        _, _, model, service = served
        service.deploy(model)
        with pytest.raises(TrainingError):
            service.score_key({"no_such_column": 1})
        assert service.stats()["serving_faults"] == {
            "transient": 0,
            "permanent": 0,
        }
