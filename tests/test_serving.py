"""PredictionService: versioning, warm-cache census, worker parity.

The service compiles deployed models once per version digest and keeps
the kernels in a warm LRU (:class:`repro.serve.CompiledModelCache`).
These tests pin the cache census (hits/misses/stores/evictions), the
stale-version eviction on redeploy, and that fanning batch scoring out
over ``JOINBOOST_NUM_WORKERS=4`` workers returns bytes identical to
serial — the kernels are pure numpy, so concurrency must never show up
in the output.
"""

import numpy as np
import pytest

import repro
from repro.core.predict import feature_frame
from repro.core.serialize import model_digest
from repro.exceptions import TrainingError
from repro.serve import CompiledModelCache, PredictionService


@pytest.fixture
def served(tiny_star):
    db, graph = tiny_star
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": 3, "num_leaves": 4, "seed": 5}
    )
    service = PredictionService(db, graph)
    return db, graph, model, service


class TestDeployment:
    def test_deploy_returns_content_digest(self, served):
        _, _, model, service = served
        digest = service.deploy(model)
        assert digest == model_digest(model)
        assert service.version() == digest

    def test_scoring_undeployed_name_raises(self, served):
        _, _, model, service = served
        service.deploy(model, name="prod")
        with pytest.raises(TrainingError, match="staging"):
            service.score_all(name="staging")

    def test_undeploy_forgets_and_evicts(self, served):
        _, _, model, service = served
        service.deploy(model)
        service.score_all()
        service.undeploy()
        assert service.deployments() == []
        assert service.stats()["entries"] == 0

    def test_redeploy_evicts_stale_version(self, served):
        db, graph, model, service = served
        first = service.deploy(model)
        service.score_all()  # warms the cache with the first kernel
        retrained = repro.train_gradient_boosting(
            db, graph, {"num_iterations": 4, "num_leaves": 4, "seed": 6}
        )
        second = service.deploy(retrained)
        assert second != first
        stats = service.stats()
        assert stats["invalidations"] == 1
        assert stats["deployments"]["default"] == second
        # The next score must recompile (miss), not serve the old bits.
        before = stats["misses"]
        scores = service.score_all()
        frame = feature_frame(db, graph, include_target=False)
        assert np.array_equal(scores, retrained.predict_arrays(frame))
        assert service.stats()["misses"] == before + 1


class TestCacheCensus:
    def test_hit_miss_store_counts(self, served):
        _, _, model, service = served
        service.deploy(model)
        service.score_all()  # miss -> compile -> store
        service.score_all()  # hit
        service.score_all()  # hit
        stats = service.stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 2
        assert stats["entries"] == 1

    def test_lru_evicts_oldest(self):
        cache = CompiledModelCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate_unknown_digest_is_noop(self):
        cache = CompiledModelCache()
        assert cache.invalidate("nope") is False
        assert cache.stats()["invalidations"] == 0


class TestWorkerParity:
    def test_parallel_score_all_identical_to_serial(self, served, monkeypatch):
        db, graph, model, service = served
        service.deploy(model)
        serial = service.score_all(workers=1)
        frame = feature_frame(db, graph, include_target=False)
        assert np.array_equal(serial, model.predict_arrays(frame))

        monkeypatch.setenv("JOINBOOST_NUM_WORKERS", "4")
        parallel = service.score_all(batch_rows=64)  # env-resolved workers
        assert np.array_equal(parallel, serial)

    def test_score_batches_preserves_order(self, served):
        db, graph, model, service = served
        service.deploy(model)
        frame = feature_frame(db, graph, include_target=False)
        rng = np.random.default_rng(8)
        n = len(next(iter(frame.values())))
        frames = []
        for _ in range(6):
            idx = rng.integers(0, n, 17)
            frames.append({k: v[idx] for k, v in frame.items()})
        serial = service.score_batches(frames, workers=1)
        fanned = service.score_batches(frames, workers=4)
        for a, b in zip(serial, fanned):
            assert np.array_equal(a, b)

    def test_sql_path_matches_compiled(self, served):
        _, _, model, service = served
        service.deploy(model)
        assert np.array_equal(service.score_sql(), service.score_all())
