"""Unit tests for the Column vector type."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.column import Column, ColumnType


class TestConstruction:
    def test_int_inference(self):
        col = Column("a", [1, 2, 3])
        assert col.ctype is ColumnType.INT
        assert col.values.dtype == np.int64

    def test_float_inference(self):
        col = Column("a", [1.5, 2.5])
        assert col.ctype is ColumnType.FLOAT

    def test_str_inference(self):
        col = Column("a", np.array(["x", "y"], dtype=object))
        assert col.ctype is ColumnType.STR

    def test_scalar_becomes_length_one(self):
        assert len(Column("a", 5)) == 1

    def test_two_dimensional_rejected(self):
        with pytest.raises(StorageError):
            Column("a", np.zeros((2, 2)))

    def test_float_nan_creates_validity_mask(self):
        col = Column("a", [1.0, np.nan, 3.0])
        assert col.valid is not None
        assert list(col.is_null()) == [False, True, False]

    def test_float_to_int_column_keeps_nulls(self):
        col = Column("a", np.array([1.0, np.nan]), ColumnType.INT)
        assert col.values.dtype == np.int64
        assert list(col.is_null()) == [False, True]

    def test_no_mask_when_no_nans(self):
        assert Column("a", [1.0, 2.0]).valid is None


class TestDerivation:
    def test_take_gathers(self):
        col = Column("a", [10, 20, 30])
        assert list(col.take(np.array([2, 0])).values) == [30, 10]

    def test_take_negative_pads_null(self):
        col = Column("a", [1.0, 2.0])
        out = col.take(np.array([0, -1]))
        assert out.is_null()[1]
        assert np.isnan(out.values[1])

    def test_take_negative_int_column(self):
        col = Column("a", [1, 2])
        out = col.take(np.array([-1, 1]))
        assert out.is_null()[0] and not out.is_null()[1]

    def test_filter(self):
        col = Column("a", [1, 2, 3])
        assert list(col.filter(np.array([True, False, True])).values) == [1, 3]

    def test_rename_shares_data(self):
        col = Column("a", [1, 2])
        renamed = col.rename("b")
        assert renamed.values is col.values
        assert renamed.name == "b"

    def test_copy_is_independent(self):
        col = Column("a", [1, 2])
        dup = col.copy()
        dup.values[0] = 99
        assert col.values[0] == 1


class TestConversions:
    def test_as_float_nulls_become_nan(self):
        col = Column("a", np.array([1.0, np.nan]))
        out = col.as_float()
        assert np.isnan(out[1])

    def test_as_float_rejects_strings(self):
        col = Column("a", np.array(["x"], dtype=object))
        with pytest.raises(StorageError):
            col.as_float()

    def test_nbytes_positive(self):
        assert Column("a", [1, 2, 3]).nbytes() > 0
        assert Column("a", np.array(["abc"], dtype=object)).nbytes() > 0
