"""Differential parity for the compiled prediction paths.

Every model class scores three ways — recursive node-walk
(``predict_arrays``, the reference), the flat-numpy compiled kernel
(:mod:`repro.core.compile`), and the SQL ``CASE WHEN`` export
(:mod:`repro.core.sql_score`) — and the contract is *bit-identity*:
``np.array_equal``, not ``allclose``.  The sweep covers every model
class x {embedded, sqlite} x {categorical splits, missing='both' NULL
routing, multiclass}, plus a seeded RNG sweep and the request-sized
subset path the serving cache exercises.
"""

import numpy as np
import pytest

import repro
from repro.core.compile import (
    CompiledTreeBank,
    compile_model,
    compiled_node_count,
    predict_compiled,
)
from repro.core.predict import feature_frame
from repro.core.sql_score import score_by_key, sql_scores

from conftest import backend_matrix

BACKENDS = backend_matrix("embedded", "sqlite")


def _star(conn, n=500, seed=7, classify=False):
    """Star schema with a categorical dim feature, a NaN-bearing numeric
    dim feature, and a local fact feature — the full split-type mix."""
    rng = np.random.default_rng(seed)
    k1 = rng.integers(0, 24, n)
    k2 = rng.integers(0, 16, n)
    local = rng.normal(size=n) * 2.0

    colors = np.array(["red", "green", "blue", "teal"], dtype=object)
    color_codes = rng.integers(0, 4, 24)
    d1 = rng.normal(size=24) * 4.0
    d1[rng.random(24) < 0.15] = np.nan
    d2 = rng.normal(size=16) * 2.0

    signal = np.where(np.isin(color_codes, [0, 2]), 5.0, -5.0)
    y = (
        signal[k1]
        + np.nan_to_num(d1)[k1]
        + d2[k2]
        + 0.5 * local
        + rng.normal(0, 0.3, n)
    )
    if classify:
        y = np.digitize(y, np.quantile(y, [0.33, 0.66])).astype(np.int64)
    conn.create_table("fact", {"k1": k1, "k2": k2, "local": local, "yv": y})
    conn.create_table(
        "dim1", {"k1": np.arange(24), "color": colors[color_codes], "d1": d1}
    )
    conn.create_table("dim2", {"k2": np.arange(16), "d2": d2})

    train_set = repro.join_graph(conn)
    train_set.add_node("fact", X=["local"], y="yv", is_fact=True)
    train_set.add_node("dim1", X=["color", "d1"], categorical=["color"])
    train_set.add_node("dim2", X=["d2"])
    train_set.add_edge("fact", "dim1", ["k1"])
    train_set.add_edge("fact", "dim2", ["k2"])
    return train_set.graph


def _train(kind, conn, graph, seed=7):
    if kind == "tree":
        return repro.train_decision_tree(
            conn, graph, {"num_leaves": 8, "min_data_in_leaf": 5}
        )
    if kind == "boosting":
        return repro.train_gradient_boosting(
            conn,
            graph,
            {"num_iterations": 4, "num_leaves": 6, "min_data_in_leaf": 5,
             "missing": "both", "seed": seed},
        )
    if kind == "forest":
        return repro.train_random_forest(
            conn,
            graph,
            {"num_iterations": 3, "num_leaves": 6, "min_data_in_leaf": 5,
             "seed": seed},
        )
    if kind == "multiclass":
        return repro.train_gradient_boosting(
            conn,
            graph,
            {"objective": "multiclass", "num_class": 3, "num_iterations": 2,
             "num_leaves": 5, "min_data_in_leaf": 5, "seed": seed},
        )
    if kind == "forest-vote":
        return repro.train_random_forest(
            conn,
            graph,
            {"objective": "multiclass", "num_class": 3, "num_iterations": 3,
             "num_leaves": 5, "min_data_in_leaf": 5, "seed": seed},
        )
    raise AssertionError(kind)


MODEL_KINDS = ("tree", "boosting", "forest", "multiclass", "forest-vote")


class TestThreeWayParity:
    """recursive == compiled == SQL, bit for bit, per model x backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", MODEL_KINDS)
    def test_bit_identity(self, kind, backend):
        conn = repro.connect(backend=backend)
        classify = kind in ("multiclass", "forest-vote")
        graph = _star(conn, classify=classify)
        model = _train(kind, conn, graph)

        frame = feature_frame(conn, graph, include_target=False)
        recursive = model.predict_arrays(frame)
        compiled = predict_compiled(conn, graph, model)
        via_sql = sql_scores(conn, graph, model)
        assert np.array_equal(recursive, compiled)
        assert np.array_equal(recursive, via_sql)

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    def test_compiled_kernel_direct(self, kind):
        """compile_model().predict_arrays on a hand-built frame matches
        the recursive reference (no feature_frame in the loop)."""
        conn = repro.connect(backend="embedded")
        classify = kind in ("multiclass", "forest-vote")
        graph = _star(conn, classify=classify)
        model = _train(kind, conn, graph)
        frame = feature_frame(conn, graph, include_target=False)
        kernel = compile_model(model)
        assert np.array_equal(
            kernel.predict_arrays(frame), model.predict_arrays(frame)
        )

    def test_request_sized_subsets_match_full_frame(self):
        """The serving shape: tiny random row subsets must score exactly
        like the same rows inside a full-frame call."""
        conn = repro.connect(backend="embedded")
        graph = _star(conn)
        model = _train("boosting", conn, graph)
        frame = feature_frame(conn, graph, include_target=False)
        kernel = compile_model(model)
        full = kernel.predict_arrays(frame)
        rng = np.random.default_rng(3)
        n = len(full)
        for size in (1, 3, 64):
            idx = rng.integers(0, n, size)
            subset = {k: v[idx] for k, v in frame.items()}
            assert np.array_equal(kernel.predict_arrays(subset), full[idx])

    def test_multiclass_probabilities_match(self):
        conn = repro.connect(backend="embedded")
        graph = _star(conn, classify=True)
        model = _train("multiclass", conn, graph)
        frame = feature_frame(conn, graph, include_target=False)
        kernel = compile_model(model)
        assert np.array_equal(
            kernel.predict_proba(frame), model.predict_proba(frame)
        )


class TestSeededSweep:
    """Parity is not a lucky seed: sweep RNG seeds end to end."""

    @pytest.mark.parametrize("seed", (1, 2, 13, 29, 97))
    def test_boosting_parity_across_seeds(self, seed):
        conn = repro.connect(backend="embedded")
        graph = _star(conn, n=300, seed=seed)
        model = _train("boosting", conn, graph, seed=seed)
        frame = feature_frame(conn, graph, include_target=False)
        recursive = model.predict_arrays(frame)
        assert np.array_equal(compile_model(model).predict_arrays(frame),
                              recursive)
        assert np.array_equal(sql_scores(conn, graph, model), recursive)


class TestScoreByKey:
    """The "score user id X" semi-join path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_key_restriction_matches_full_scores(self, backend):
        conn = repro.connect(backend=backend)
        graph = _star(conn)
        model = _train("boosting", conn, graph)
        frame = feature_frame(conn, graph, include_target=False)
        full = model.predict_arrays(frame)

        fact_k1 = np.asarray(conn.table("fact").column("k1").as_float())
        key = int(fact_k1[0])
        expected = full[fact_k1 == key]
        result = score_by_key(conn, graph, model, {"k1": key})
        scored = np.asarray(result.column("jb_score").as_float())
        assert len(scored) == (fact_k1 == key).sum()
        assert np.array_equal(np.sort(scored), np.sort(expected))

    def test_unmatched_key_returns_empty(self):
        conn = repro.connect(backend="embedded")
        graph = _star(conn)
        model = _train("tree", conn, graph)
        result = score_by_key(conn, graph, model, {"k1": 10_000})
        assert len(result.column("jb_score").values) == 0


class TestCompiledStructure:
    def test_node_count_matches_model(self):
        conn = repro.connect(backend="embedded")
        graph = _star(conn)
        model = _train("boosting", conn, graph)
        kernel = compile_model(model)
        assert compiled_node_count(kernel) == sum(
            t.num_nodes for t in kernel.trees
        )
        assert isinstance(kernel.bank, CompiledTreeBank)
        assert kernel.bank.num_trees == len(model.trees)

    def test_empty_frame_scores_empty(self):
        conn = repro.connect(backend="embedded")
        graph = _star(conn)
        model = _train("boosting", conn, graph)
        frame = feature_frame(conn, graph, include_target=False)
        empty = {k: v[:0] for k, v in frame.items()}
        assert len(compile_model(model).predict_arrays(empty)) == 0

    def test_missing_column_raises_training_error(self):
        from repro.exceptions import TrainingError

        conn = repro.connect(backend="embedded")
        graph = _star(conn)
        model = _train("boosting", conn, graph)
        kernel = compile_model(model)
        with pytest.raises(TrainingError):
            kernel.predict_arrays({"local": np.zeros(3)})
