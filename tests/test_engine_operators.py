"""Vectorized operator tests: factorize, joins, grouped aggregates,
windows — including property tests against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import operators as ops


class TestFactorize:
    def test_single_key(self):
        codes, n, first, nulls = ops.factorize([np.array([3, 1, 3, 2])])
        assert n == 3
        assert codes[0] == codes[2]
        assert not nulls.any()

    def test_composite_key(self):
        codes, n, _, _ = ops.factorize(
            [np.array([1, 1, 2, 2]), np.array([1, 2, 1, 1])]
        )
        assert n == 3
        assert codes[2] == codes[3]

    def test_nan_groups_together(self):
        codes, n, _, nulls = ops.factorize([np.array([np.nan, np.nan, 1.0])])
        assert codes[0] == codes[1]
        assert n == 2
        assert list(nulls) == [True, True, False]

    def test_none_strings_group_together(self):
        values = np.array(["a", None, None], dtype=object)
        codes, n, _, nulls = ops.factorize([values])
        assert codes[1] == codes[2]
        assert n == 2

    def test_empty(self):
        codes, n, first, nulls = ops.factorize([np.zeros(0)])
        assert n == 0 and len(codes) == 0


class TestJoinIndices:
    def brute(self, left, right):
        return sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        )

    def test_inner_matches_brute_force(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 5, 30)
        right = rng.integers(0, 5, 20)
        l_idx, r_idx = ops.join_indices([left], [right])
        assert sorted(zip(l_idx, r_idx)) == self.brute(left, right)

    def test_left_join_pads(self):
        l_idx, r_idx = ops.join_indices(
            [np.array([1, 2, 9])], [np.array([1, 2])], how="left"
        )
        padded = r_idx[l_idx == 2]
        assert list(padded) == [-1]

    def test_full_join(self):
        l_idx, r_idx = ops.join_indices(
            [np.array([1, 9])], [np.array([1, 7])], how="full"
        )
        assert (-1 in list(l_idx)) and (-1 in list(r_idx))

    def test_nan_keys_never_match(self):
        l_idx, r_idx = ops.join_indices(
            [np.array([np.nan, 1.0])], [np.array([np.nan, 1.0])]
        )
        assert len(l_idx) == 1

    @given(
        st.lists(st.integers(0, 6), max_size=40),
        st.lists(st.integers(0, 6), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_inner_join_property(self, left, right):
        left, right = np.array(left, dtype=np.int64), np.array(right, dtype=np.int64)
        if len(left) == 0 or len(right) == 0:
            return
        l_idx, r_idx = ops.join_indices([left], [right])
        assert sorted(zip(l_idx, r_idx)) == self.brute(left, right)

    def test_semi_join_mask(self):
        mask = ops.semi_join_mask([np.array([1, 2, 3])], [np.array([2, 9])])
        assert list(mask) == [False, True, False]


class TestGroupedAggregates:
    def test_group_sum_skips_nan(self):
        codes = np.array([0, 0, 1])
        sums, counts = ops.group_sum(codes, 2, np.array([1.0, np.nan, 5.0]))
        assert list(sums) == [1.0, 5.0]
        assert list(counts) == [1, 1]

    def test_group_min_max(self):
        codes = np.array([0, 0, 1])
        values = np.array([3.0, 1.0, 7.0])
        assert list(ops.group_min(codes, 2, values)) == [1.0, 7.0]
        assert list(ops.group_max(codes, 2, values)) == [3.0, 7.0]

    def test_group_min_all_null_is_nan(self):
        out = ops.group_min(np.array([0]), 1, np.array([np.nan]))
        assert np.isnan(out[0])

    def test_group_median(self):
        codes = np.array([0, 0, 0, 1])
        out = ops.group_median(codes, 2, np.array([1.0, 9.0, 5.0, 2.0]))
        assert list(out) == [5.0, 2.0]

    def test_group_count_distinct(self):
        codes = np.array([0, 0, 0, 1])
        out = ops.group_count_distinct(codes, 2, np.array([1, 1, 2, 5]))
        assert list(out) == [2, 1]

    def test_group_var(self):
        codes = np.zeros(4, dtype=np.int64)
        out = ops.group_var(codes, 1, np.array([1.0, 2.0, 3.0, 4.0]))
        assert out[0] == pytest.approx(np.var([1, 2, 3, 4]))

    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(-100, 100)), min_size=1,
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_group_sum_property(self, pairs):
        codes = np.array([p[0] for p in pairs], dtype=np.int64)
        values = np.array([p[1] for p in pairs])
        sums, _ = ops.group_sum(codes, 4, values)
        for g in range(4):
            expected = values[codes == g].sum()
            if (codes == g).any():
                assert sums[g] == pytest.approx(expected, abs=1e-6)


class TestWindows:
    def test_running_sum_with_peers(self):
        out = ops.window_eval(
            "sum", np.array([1.0, 1.0, 1.0]), None,
            [(np.array([1, 1, 2]), True)], 3,
        )
        assert list(out) == [2.0, 2.0, 3.0]

    def test_running_sum_descending(self):
        out = ops.window_eval(
            "sum", np.array([1.0, 2.0, 3.0]), None,
            [(np.array([1, 2, 3]), False)], 3,
        )
        assert list(out) == [6.0, 5.0, 3.0]

    def test_partition_reset(self):
        out = ops.window_eval(
            "sum", np.array([1.0, 2.0, 4.0, 8.0]),
            np.array([0, 0, 1, 1]),
            [(np.array([1, 2, 1, 2]), True)], 4,
        )
        assert list(out) == [1.0, 3.0, 4.0, 12.0]

    def test_running_min(self):
        out = ops.window_eval(
            "min", np.array([5.0, 3.0, 4.0]), None,
            [(np.array([1, 2, 3]), True)], 3,
        )
        assert list(out) == [5.0, 3.0, 3.0]

    def test_count_skips_nan(self):
        out = ops.window_eval(
            "count", np.array([1.0, np.nan, 2.0]), None,
            [(np.array([1, 2, 3]), True)], 3,
        )
        assert list(out) == [1.0, 1.0, 2.0]

    def test_prefix_sum_equals_cumsum_when_unique(self):
        rng = np.random.default_rng(1)
        keys = rng.permutation(50).astype(float)
        values = rng.normal(size=50)
        out = ops.window_eval("sum", values, None, [(keys, True)], 50)
        order = np.argsort(keys)
        assert np.allclose(out[order], np.cumsum(values[order]))


class TestSortIndices:
    def test_multi_key(self):
        idx = ops.sort_indices(
            [(np.array([1, 1, 0]), True), (np.array([2, 1, 9]), True)], 3
        )
        assert list(idx) == [2, 1, 0]

    def test_nan_sorts_last(self):
        idx = ops.sort_indices([(np.array([np.nan, 1.0, 2.0]), True)], 3)
        assert idx[-1] == 0

    def test_nan_sorts_last_descending(self):
        idx = ops.sort_indices([(np.array([np.nan, 1.0, 2.0]), False)], 3)
        assert idx[-1] == 0


class TestLongStringKeys:
    """Keys longer than 64 chars must stay distinct: the old fixed
    ``astype("U64")`` silently truncated them, merging join keys and
    groups that only differ past the cutoff."""

    def _keys(self):
        prefix = "p" * 70  # identical through char 64 and beyond
        return np.array([prefix + "A", prefix + "B", prefix + "A"],
                        dtype=object)

    def test_factorize_distinguishes_past_64_chars(self):
        codes, ngroups, _, _ = ops.factorize([self._keys()])
        assert ngroups == 2
        assert codes[0] == codes[2] != codes[1]

    def test_join_indices_long_keys(self):
        left = self._keys()
        right = np.array(["p" * 70 + "B"], dtype=object)
        left_idx, right_idx = ops.join_indices([left], [right])
        assert list(left_idx) == [1]

    def test_semi_join_mask_long_keys(self):
        left = self._keys()
        right = np.array(["p" * 70 + "A"], dtype=object)
        mask = ops.semi_join_mask([left], [right])
        assert list(mask) == [True, False, True]

    def test_group_by_long_keys_via_sql(self):
        from repro.engine.database import Database

        db = Database()
        db.create_table(
            "t", {"k": self._keys(), "v": np.array([1.0, 10.0, 100.0])}
        )
        result = db.execute("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert result.num_rows == 2
        sums = sorted(result.column("s").values.tolist())
        assert sums == [10.0, 101.0]
